"""The process-pool sweep executor.

:func:`run_parallel` fans a list of :class:`Task` out across worker
processes and returns one result per task, **in task order**, regardless
of which worker finished first — so a parallel sweep returns exactly the
list its serial counterpart would.  Three failure-containment layers
keep one bad task from killing a sweep:

* **per-task timeout** — a task that exceeds ``timeout`` seconds has its
  worker process terminated,
* **bounded retry** — a failed or timed-out task is re-attempted up to
  ``retries`` more times (in a fresh process),
* **TaskFailure verdict** — a task that exhausts its attempts yields a
  :class:`TaskFailure` in its result slot instead of raising, so the
  rest of the sweep still completes and reports.

Completed tasks can be **checkpointed** to a JSONL file
(``repro-checkpoint/1``): one header line carrying the sweep context,
then one ``task`` record per completed task.  Passing the same path back
via ``checkpoint=`` resumes — tasks already recorded are replayed from
the file without re-executing, the rest run normally.  A checkpoint
written under a different context (seed, quick flag, ...) is rejected
rather than silently mixed in.

Workers are real OS processes (``fork`` where available, ``spawn``
otherwise), so task functions and their kwargs must be module-level
picklables, and results travel back through a pipe — keep them small
(dataclasses, dicts, sinks; not whole engines).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Task",
    "TaskFailure",
    "load_checkpoint",
    "run_parallel",
]

CHECKPOINT_SCHEMA = "repro-checkpoint/1"

#: Parent-loop poll granularity (seconds) while enforcing deadlines.
_POLL_S = 0.05


@dataclass(frozen=True)
class Task:
    """One unit of sweep work.

    ``key`` identifies the task in checkpoints and failures — it must be
    unique within the sweep and stable across runs (e.g. ``"E7"`` or
    ``"bfs/p=0.05/i=3"``), because resume matches completed work by key.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskFailure:
    """Terminal verdict for a task that exhausted its attempts.

    Occupies the task's slot in the result list so downstream code can
    tell *which* coordinate failed and why without losing the rest of
    the sweep.
    """

    key: str
    error: str
    attempts: int
    timed_out: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cause = "timed out" if self.timed_out else "failed"
        return f"{self.key}: {cause} after {self.attempts} attempt(s): {self.error}"


def _mp_context():
    """Prefer ``fork`` (cheap, inherits imports); fall back to ``spawn``."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _worker(conn, fn, kwargs) -> None:
    """Child-process entry: run the task, ship one (status, payload) pair."""
    try:
        result = fn(**kwargs)
        conn.send(("ok", result))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
    finally:
        conn.close()


# -- checkpointing ------------------------------------------------------


def load_checkpoint(
    path: str, context: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Read a ``repro-checkpoint/1`` file: key -> encoded result.

    Args:
        path: checkpoint file; missing file means "nothing completed".
        context: when given, the header's ``context`` must equal it —
            resuming a sweep under different parameters is an error, not
            a silent replay of stale results.

    Raises:
        ValueError: malformed file, wrong schema, or context mismatch.
    """
    completed: Dict[str, Any] = {}
    if not os.path.exists(path):
        return completed
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}")
            if lineno == 1:
                if (
                    record.get("type") != "meta"
                    or record.get("schema") != CHECKPOINT_SCHEMA
                ):
                    raise ValueError(
                        f"{path}:1: expected meta header with schema "
                        f"{CHECKPOINT_SCHEMA!r}, got {record!r}"
                    )
                if context is not None and record.get("context") != context:
                    raise ValueError(
                        f"{path}: checkpoint context {record.get('context')!r} "
                        f"does not match this sweep's {context!r}; refusing "
                        f"to resume across different sweep parameters"
                    )
                continue
            if record.get("type") != "task" or "key" not in record:
                raise ValueError(f"{path}:{lineno}: malformed task record")
            completed[record["key"]] = record["result"]
    return completed


class _CheckpointWriter:
    """Append-mode JSONL writer, flushed per record so a kill loses at
    most the in-flight task."""

    def __init__(self, path: str, context: Dict[str, Any], fresh: bool):
        self.path = path
        mode = "w" if fresh else "a"
        self._fh = open(path, mode)
        if fresh:
            self._write(
                {"type": "meta", "schema": CHECKPOINT_SCHEMA,
                 "context": context}
            )

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, encoded: Any) -> None:
        self._write({"type": "task", "key": key, "result": encoded})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# -- the executor -------------------------------------------------------


@dataclass
class _Running:
    index: int
    task: Task
    attempt: int
    proc: Any
    conn: Any
    deadline: Optional[float]


def run_parallel(
    tasks: List[Task],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    context: Optional[Dict[str, Any]] = None,
    encode: Callable[[Any], Any] = lambda r: r,
    decode: Callable[[Any], Any] = lambda r: r,
) -> List[Any]:
    """Run ``tasks`` across ``jobs`` worker processes; results in task order.

    Args:
        tasks: the sweep, with unique stable keys.
        jobs: maximum concurrently-running worker processes.
        timeout: per-task wall-clock budget in seconds (``None`` = no
            limit).  A task over budget has its process terminated and
            counts the attempt as failed.
        retries: additional attempts after the first failure/timeout;
            ``retries=1`` means at most two attempts total.
        checkpoint: JSONL path for completed-task records.  If the file
            already exists (with a matching ``context``), tasks recorded
            in it are replayed without re-executing.
        context: sweep parameters stamped into the checkpoint header and
            required to match on resume (e.g. ``{"seed": 0, "quick": True}``).
        encode: result -> JSON-serializable, for the checkpoint record.
        decode: inverse of ``encode``, applied when replaying records.

    Returns:
        One entry per task, in task order: the task function's return
        value, or a :class:`TaskFailure` if it exhausted its attempts.
        Failures are never checkpointed, so a resumed sweep re-attempts
        them.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        dup = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate task keys: {dup}")

    context = context or {}
    results: List[Any] = [None] * len(tasks)
    done = [False] * len(tasks)

    writer: Optional[_CheckpointWriter] = None
    if checkpoint is not None:
        fresh = not os.path.exists(checkpoint)
        completed = load_checkpoint(checkpoint, context)
        for i, task in enumerate(tasks):
            if task.key in completed:
                results[i] = decode(completed[task.key])
                done[i] = True
        writer = _CheckpointWriter(checkpoint, context, fresh)

    ctx = _mp_context()
    queue = [(i, t) for i, t in enumerate(tasks) if not done[i]]
    queue.reverse()  # pop() from the end keeps task order
    running: List[_Running] = []

    def _launch(index: int, task: Task, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker, args=(child_conn, task.fn, dict(task.kwargs))
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + timeout if timeout is not None else None
        running.append(
            _Running(index, task, attempt, proc, parent_conn, deadline)
        )

    def _finish(slot: _Running, outcome: Any) -> None:
        running.remove(slot)
        slot.conn.close()
        slot.proc.join()
        results[slot.index] = outcome
        done[slot.index] = True
        if writer is not None and not isinstance(outcome, TaskFailure):
            writer.record(slot.task.key, encode(outcome))

    def _retry_or_fail(slot: _Running, error: str, timed_out: bool) -> None:
        if slot.attempt <= retries:
            index, task, attempt = slot.index, slot.task, slot.attempt
            running.remove(slot)
            slot.conn.close()
            slot.proc.join()
            _launch(index, task, attempt + 1)
        else:
            _finish(
                slot,
                TaskFailure(
                    key=slot.task.key,
                    error=error,
                    attempts=slot.attempt,
                    timed_out=timed_out,
                ),
            )

    try:
        while queue or running:
            while queue and len(running) < jobs:
                index, task = queue.pop()
                _launch(index, task, attempt=1)

            now = time.monotonic()
            wait_for = _POLL_S
            if any(s.deadline is not None for s in running):
                nearest = min(
                    s.deadline for s in running if s.deadline is not None
                )
                wait_for = min(wait_for, max(0.0, nearest - now))
            ready = _conn_wait([s.conn for s in running], timeout=wait_for)

            for conn in ready:
                slot = next(s for s in running if s.conn is conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    # The worker died without reporting (crash, kill).
                    _retry_or_fail(
                        slot, "worker process died without a result",
                        timed_out=False,
                    )
                    continue
                if status == "ok":
                    _finish(slot, payload)
                else:
                    _retry_or_fail(slot, payload, timed_out=False)

            now = time.monotonic()
            for slot in list(running):
                if slot.deadline is not None and now >= slot.deadline:
                    slot.proc.terminate()
                    _retry_or_fail(
                        slot,
                        f"task exceeded {timeout}s timeout",
                        timed_out=True,
                    )
    finally:
        for slot in running:  # pragma: no cover - only on hard errors
            slot.proc.terminate()
            slot.proc.join()
            slot.conn.close()
        if writer is not None:
            writer.close()

    return results
