"""Deterministic seed derivation for sweeps and parallel task fan-out.

Every sweep in the repository needs one independent random stream per
task — per (experiment, seed) pair, per fault-sweep index, per bench
repetition.  The ad-hoc arithmetic this module replaces,
``seed * 1000 + i``, is collision-prone: ``(seed=0, i=1000)`` lands on
the same stream as ``(seed=1, i=0)``, so adjacent root seeds share
fault streams and a "fresh seed" rerun silently repeats work.

:func:`derive_seed` is the single documented derivation: it hashes the
root seed together with an arbitrary coordinate tuple, so distinct
coordinates give (cryptographically) independent seeds, the mapping is
stable across processes, platforms, and Python versions, and no
coordinate geometry can alias another.
"""

from __future__ import annotations

import hashlib
from typing import Union

__all__ = ["derive_seed"]

#: Derived seeds are non-negative and fit comfortably in every RNG the
#: repository uses (``numpy.random.default_rng``, ``random.Random``).
_SEED_BITS = 63

#: ASCII unit separator: cannot appear in the decimal/float renderings
#: of numeric coordinates, so joined encodings never alias across
#: positions (unlike plain concatenation, where (1, 23) == (12, 3)).
_SEP = "\x1f"

Coordinate = Union[int, float, str]


def _encode(value: Coordinate) -> str:
    """A stable, type-tagged text encoding of one coordinate."""
    if isinstance(value, bool):  # bool is an int subclass; tag it apart
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, str):
        return f"s:{value}"
    raise TypeError(
        f"seed coordinates must be int, float, or str; got "
        f"{type(value).__name__}: {value!r}"
    )


def derive_seed(root_seed: int, *coords: Coordinate) -> int:
    """Derive a child seed from ``root_seed`` and a coordinate path.

    The contract:

    * **Deterministic** — the same ``(root_seed, *coords)`` always maps
      to the same seed, in any process on any platform (the hash is
      BLAKE2b over a canonical encoding; nothing depends on
      ``PYTHONHASHSEED`` or dict order).
    * **Collision-resistant** — distinct coordinate tuples map to
      distinct seeds except with cryptographically negligible
      probability; in particular, adjacent root seeds never share
      streams the way ``seed * 1000 + i`` made ``(0, 1000)`` and
      ``(1, 0)`` collide.
    * **Position-safe** — coordinates are type-tagged and joined with a
      separator, so ``("a", "bc")`` and ``("ab", "c")`` differ, as do
      ``1`` and ``"1"`` and ``True``.

    Args:
        root_seed: the sweep's root seed (any int, negative allowed).
        coords: the task's coordinates — sweep indices, experiment ids,
            worker labels, fault probabilities (ints, floats, strings).

    Returns:
        A seed in ``[0, 2**63)``, suitable for ``numpy.random.default_rng``
        and ``random.Random``.
    """
    payload = _SEP.join(
        [_encode(int(root_seed))] + [_encode(c) for c in coords]
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=16)
    return int.from_bytes(digest.digest(), "big") % (1 << _SEED_BITS)
