"""The parallel verification sweep: experiments fanned across workers.

This is the executor's flagship consumer — ``verify_all(jobs=N)`` and
``python -m repro verify --jobs N`` both land here.  Each experiment
becomes one :class:`~repro.parallel.executor.Task`; every worker runs
the *same* ``run(quick=quick, seed=seed)`` call the serial loop would,
so the parallel sweep returns bit-identical
:class:`~repro.experiments.runner.Verdict` objects in the same order.
Only the scheduling differs, never the computation.

When a merged trace is requested (``jsonl_path=``), each worker runs
its experiment under the observability spine, streams events to a
private ``repro-trace/1`` shard, and ships its :class:`MetricsSink`
back through the result pipe; the parent stitches shards with
:func:`repro.obs.jsonl.merge_jsonl_shards` and folds sinks with
:meth:`MetricsSink.merge`, so the merged products equal a one-process
instrumented run's.

Checkpoint records carry the verdict *and* the metrics snapshot, so a
sweep killed mid-run resumes with both intact: completed experiments
are replayed from the file, only the remainder re-executes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..obs import MetricsSink
from ..obs.jsonl import merge_jsonl_shards
from .executor import Task, TaskFailure, run_parallel

__all__ = ["VerifySweep", "verify_parallel"]


@dataclass
class _TaskPayload:
    """What one verify worker ships back through the result pipe."""

    verdict: Any  # runner.Verdict (imported lazily; circular import)
    metrics: Optional[MetricsSink]
    shard: Optional[str]


@dataclass
class VerifySweep:
    """Everything a parallel verification run produced."""

    #: One entry per target, in target order: Verdict or TaskFailure.
    verdicts: List[Any]
    #: Merged cross-process metrics registry (None without a trace).
    metrics: Optional[MetricsSink]
    #: The merged ``repro-trace/1`` stream (None without a trace).
    jsonl_path: Optional[str]

    @property
    def failures(self) -> List[TaskFailure]:
        return [v for v in self.verdicts if isinstance(v, TaskFailure)]


def _verify_task(
    experiment: str,
    quick: bool,
    seed: int,
    shard_path: Optional[str] = None,
) -> _TaskPayload:
    """Worker entry: one experiment, optionally instrumented.

    Module-level so it pickles under the ``spawn`` start method.  The
    un-instrumented branch calls the exact function the serial
    ``verify_all`` loop calls — that is what makes parallel verdicts
    bit-identical to serial ones by construction.
    """
    from ..experiments.runner import (
        CRITERIA,
        RunRequest,
        Verdict,
        run_instrumented,
        verify_experiment,
    )

    request = RunRequest(experiments=(experiment,), quick=quick, seed=seed)
    if shard_path is None:
        return _TaskPayload(
            verdict=verify_experiment(request),
            metrics=None,
            shard=None,
        )
    run = run_instrumented(request.replace(jsonl=shard_path))
    passed, detail = CRITERIA[experiment](run.result)
    return _TaskPayload(
        verdict=Verdict(experiment=experiment, passed=passed, detail=detail),
        metrics=run.metrics,
        shard=shard_path,
    )


def _encode_payload(payload: _TaskPayload) -> Dict[str, Any]:
    """Checkpoint record for one completed task (JSON-safe)."""
    return {
        "verdict": {
            "experiment": payload.verdict.experiment,
            "passed": payload.verdict.passed,
            "detail": payload.verdict.detail,
        },
        "metrics": (
            payload.metrics.to_state() if payload.metrics is not None else None
        ),
        "shard": payload.shard,
    }


def _decode_payload(record: Dict[str, Any]) -> _TaskPayload:
    from ..experiments.runner import Verdict

    metrics = record.get("metrics")
    return _TaskPayload(
        verdict=Verdict(**record["verdict"]),
        metrics=MetricsSink.from_state(metrics) if metrics else None,
        shard=record.get("shard"),
    )


def verify_parallel(
    quick: bool = True,
    seed: int = 0,
    only: Optional[List[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    jsonl_path: Optional[str] = None,
) -> VerifySweep:
    """Run the verification sweep across ``jobs`` worker processes.

    Args:
        quick: forwarded to every experiment's ``run``.
        seed: the sweep's root seed, forwarded verbatim to every
            experiment (serial ``verify_all`` passes the same seed to
            each experiment, and bit-identity demands we do too).
        only: experiment ids to run (default: all of them, in registry
            order).
        jobs: worker processes.
        timeout: per-experiment wall-clock budget in seconds.
        retries: re-attempts after a failure/timeout before the task
            resolves to a :class:`TaskFailure`.
        checkpoint: JSONL checkpoint path; pass the same path again to
            resume an interrupted sweep.
        jsonl_path: when set, produce one merged ``repro-trace/1``
            stream at this path (per-task shards live in a sibling
            ``<jsonl_path>.d/`` directory) and a merged
            :class:`MetricsSink`.

    Returns:
        A :class:`VerifySweep`; ``verdicts`` matches the serial run
        entry-for-entry wherever tasks succeeded.
    """
    from ..experiments import ALL_EXPERIMENTS

    targets = list(only) if only is not None else list(ALL_EXPERIMENTS)
    unknown = [t for t in targets if t not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {unknown}")

    shard_dir: Optional[str] = None
    if jsonl_path is not None:
        shard_dir = jsonl_path + ".d"
        os.makedirs(shard_dir, exist_ok=True)

    tasks = []
    for target in targets:
        kwargs: Dict[str, Any] = {
            "experiment": target, "quick": quick, "seed": seed,
        }
        if shard_dir is not None:
            kwargs["shard_path"] = os.path.join(shard_dir, f"{target}.jsonl")
        tasks.append(Task(key=target, fn=_verify_task, kwargs=kwargs))

    context = {
        "kind": "verify",
        "quick": quick,
        "seed": seed,
        "trace": jsonl_path is not None,
    }
    outcomes = run_parallel(
        tasks,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        checkpoint=checkpoint,
        context=context,
        encode=_encode_payload,
        decode=_decode_payload,
    )

    verdicts: List[Union[Any, TaskFailure]] = []
    merged: Optional[MetricsSink] = None
    shards: List[str] = []
    for outcome in outcomes:
        if isinstance(outcome, TaskFailure):
            verdicts.append(outcome)
            continue
        verdicts.append(outcome.verdict)
        if outcome.metrics is not None:
            merged = (
                outcome.metrics
                if merged is None
                else merged.merge(outcome.metrics)
            )
        if outcome.shard is not None and os.path.exists(outcome.shard):
            shards.append(outcome.shard)

    if jsonl_path is not None and shards:
        merge_jsonl_shards(shards, jsonl_path)

    return VerifySweep(
        verdicts=verdicts,
        metrics=merged,
        jsonl_path=jsonl_path if (jsonl_path is not None and shards) else None,
    )
