"""Two-party set disjointness — the source of the paper's lower bounds.

Lemmas 11, 13 and 15 all reduce the Ω(k) randomized communication bound on
disjointness [KS87; Raz90] (and the Ω(∛(kD²) + √k) quantum-on-a-line bound
[MN20]) to the distributed-data problems.  This module provides instances,
the brute-force answer, and the bound formulas the benchmarks plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class DisjointnessInstance:
    """A two-party instance: x, y ∈ {0,1}^k; intersecting iff ∃i xᵢ=yᵢ=1."""

    x: Tuple[int, ...]
    y: Tuple[int, ...]

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError("inputs must have equal length")
        if any(b not in (0, 1) for b in self.x + self.y):
            raise ValueError("inputs must be bit vectors")

    @property
    def k(self) -> int:
        return len(self.x)

    @property
    def intersecting(self) -> bool:
        return any(a and b for a, b in zip(self.x, self.y))

    def intersection(self) -> List[int]:
        return [i for i, (a, b) in enumerate(zip(self.x, self.y)) if a and b]


def random_instance(
    k: int,
    rng: np.random.Generator,
    force_intersecting: Optional[bool] = None,
    density: float = 0.3,
) -> DisjointnessInstance:
    """Sample an instance, optionally conditioned on (non-)intersection."""
    for _ in range(1000):
        x = tuple(int(b) for b in rng.random(k) < density)
        y = tuple(int(b) for b in rng.random(k) < density)
        inst = DisjointnessInstance(x, y)
        if force_intersecting is None or inst.intersecting == force_intersecting:
            return inst
    # Construct deterministically if sampling failed (extreme densities).
    if force_intersecting:
        x = tuple(1 if i == 0 else 0 for i in range(k))
        return DisjointnessInstance(x, x)
    x = tuple(1 if i % 2 == 0 else 0 for i in range(k))
    y = tuple(1 if i % 2 == 1 else 0 for i in range(k))
    return DisjointnessInstance(x, y)


def classical_congest_lower_bound(k: int, diameter: int, n: int) -> float:
    """Ω(k/log n + D), the reduction target of Lemmas 11/13."""
    return k / max(1, math.ceil(math.log2(max(n, 2)))) + max(diameter, 1)


def quantum_line_lower_bound(k: int, diameter: int) -> float:
    """Ω(∛(kD²) + √k), disjointness on a line [MN20]."""
    d = max(diameter, 1)
    return (k * d * d) ** (1 / 3) + math.sqrt(k)
