"""Lower-bound machinery: reduction gadgets and certificates (Section 4)."""

from . import disjointness, rank_certificate, reductions

__all__ = ["disjointness", "rank_certificate", "reductions"]
