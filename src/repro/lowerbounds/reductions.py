"""The reduction gadgets of Lemmas 11, 13, 15 and Theorem 18, runnable.

A lower-bound proof cannot be executed, but its *reduction* can: given a
disjointness instance, each builder constructs the exact CONGEST input the
paper describes (a path with loaded endpoints, or two joined stars), and
the checker runs one of our CONGEST algorithms on it and maps the output
back to the disjointness answer.  Tests assert the mapping is correct on
both intersecting and disjoint instances — i.e. that the reductions are
sound, which is the machine-checkable content of the lemmas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..congest import topologies
from ..congest.network import Network
from .disjointness import DisjointnessInstance


@dataclass
class MeetingGadget:
    """Lemma 11: disjointness → meeting scheduling on a path of length D."""

    network: Network
    calendars: Dict[int, List[int]]
    instance: DisjointnessInstance

    def interpret(self, best_availability: int) -> bool:
        """max_i Σ_v x_i^{(v)} = 2 iff the sets intersect."""
        return best_availability == 2


def build_meeting_gadget(
    instance: DisjointnessInstance, distance: int
) -> MeetingGadget:
    """Nodes v_A = 0 and v_B = distance hold the two inputs; relays hold 0^k."""
    network = topologies.path_with_endpoints(distance)
    k = instance.k
    calendars = {v: [0] * k for v in network.nodes()}
    calendars[0] = list(instance.x)
    calendars[distance] = list(instance.y)
    return MeetingGadget(network=network, calendars=calendars, instance=instance)


@dataclass
class EDVectorGadget:
    """Lemma 13: disjointness → element distinctness in distributed vector.

    The length-2k encoding of the lemma: v_A writes i (match candidates)
    or 2k+i (private fillers) in the first half, v_B writes i−k or 3k+i in
    the second half; a collision in x^{(v_A)} + x^{(v_B)} exists iff some
    index is 1 in both inputs.
    """

    network: Network
    vectors: Dict[int, List[int]]
    max_value: int
    instance: DisjointnessInstance

    def interpret(self, pair: Optional[Tuple[int, int]]) -> bool:
        return pair is not None


def build_ed_vector_gadget(
    instance: DisjointnessInstance, distance: int
) -> EDVectorGadget:
    """Build the Lemma 13 path gadget for a disjointness instance."""
    network = topologies.path_with_endpoints(distance)
    k = instance.k
    length = 2 * k
    vectors = {v: [0] * length for v in network.nodes()}

    va = [0] * length
    for i in range(k):
        # Paper indices are 1-based; we keep the same arithmetic shifted
        # to 0-based positions with disjoint private ranges.
        va[i] = (i + 1) if instance.x[i] == 1 else (2 * k + i + 1)
    vb = [0] * length
    for i in range(k):
        vb[k + i] = (i + 1) if instance.y[i] == 1 else (4 * k + i + 1)
    vectors[0] = va
    vectors[distance] = vb
    return EDVectorGadget(
        network=network,
        vectors=vectors,
        max_value=5 * k + 1,
        instance=instance,
    )


@dataclass
class EDNodesGadget:
    """Lemma 15: disjointness → element distinctness between nodes.

    Two stars joined center-to-center; A's leaves hold the indices of A's
    set, B's leaves hold B's; a repeated node value exists iff the sets
    intersect.  Centers hold fresh private values.
    """

    network: Network
    values: Dict[int, int]
    max_value: int
    instance: DisjointnessInstance

    def interpret(self, pair: Optional[Tuple[int, int]]) -> bool:
        return pair is not None


def build_ed_nodes_gadget(instance: DisjointnessInstance) -> EDNodesGadget:
    """Build the Lemma 15 two-star gadget for a disjointness instance."""
    set_a = [i for i, b in enumerate(instance.x) if b]
    set_b = [i for i, b in enumerate(instance.y) if b]
    if not set_a or not set_b:
        # Stars need at least one leaf; pad with private non-colliding
        # sentinel elements (cannot create a spurious intersection).
        k = instance.k
        set_a = set_a or [k + 1]
        set_b = set_b or [k + 2]
    network = topologies.two_stars(len(set_a), len(set_b))
    k = instance.k
    values: Dict[int, int] = {}
    values[0] = k + 10  # center A, private
    values[1] = k + 11  # center B, private
    next_node = 2
    for element in set_a:
        values[next_node] = element
        next_node += 1
    for element in set_b:
        values[next_node] = element
        next_node += 1
    return EDNodesGadget(
        network=network,
        values=values,
        max_value=k + 12,
        instance=instance,
    )


@dataclass
class DJGadget:
    """Theorem 18: two-party Deutsch–Jozsa → distributed DJ on a path.

    Endpoints hold the two halves of a promise input (x at v_A, y at v_B
    with x ⊕ y constant or balanced); relays hold 0^k.
    """

    network: Network
    inputs: Dict[int, List[int]]
    constant_truth: bool


def build_dj_gadget(
    x: List[int], y: List[int], distance: int
) -> DJGadget:
    """Build the Theorem 18 path gadget from a two-party DJ input pair."""
    if len(x) != len(y):
        raise ValueError("halves must have equal length")
    xor = [a ^ b for a, b in zip(x, y)]
    total = sum(xor)
    if total not in (0, len(xor)) and 2 * total != len(xor):
        raise ValueError("x ⊕ y violates the DJ promise")
    network = topologies.path_with_endpoints(distance)
    inputs = {v: [0] * len(x) for v in network.nodes()}
    inputs[0] = list(x)
    inputs[distance] = list(y)
    return DJGadget(
        network=network,
        inputs=inputs,
        constant_truth=total in (0, len(xor)),
    )
