"""Machine-checked certificates toward the exact Deutsch–Jozsa lower bound.

Theorem 18 rests on [BCW98]'s Ω(k) bound for exact two-party DJ.  That
full bound uses a counting argument over monochromatic rectangles that
cannot be certified by a polynomial-size witness; what *can* be checked by
machine is the classical fooling-set/log-rank certificate:

* **Fooling sets** — a set S ⊆ {0,1}^k such that every pair a ≠ b ∈ S has
  a ⊕ b balanced.  Every pair (a, a) is a constant ("answer 1") promise
  input, while the crossed pairs (a, b) are balanced ("answer 0") promise
  inputs, so S is a fooling set for the DJ communication problem and any
  exact protocol needs ≥ log2|S| bits.  Pairwise-exactly-k/2-distant
  binary codes are equidistant codes, so |S| ≤ O(k) (Plotkin-type bound)
  and the certificate yields log2(k) — unconditionally verified, strictly
  weaker than the cited Ω(k), and recorded as such in EXPERIMENTS.md.
* **Log-rank** — the rank of the ±1 answer matrix restricted to a fooling
  set is |S| (it is the 2I − J pattern), confirming the same bound
  through the log-rank inequality.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def xor_is_balanced(a: int, b: int, k: int) -> bool:
    """Does a ⊕ b have Hamming weight exactly k/2?"""
    return bin(a ^ b).count("1") * 2 == k


def greedy_fooling_set(k: int, limit: int = 4096) -> List[int]:
    """Greedily grow a pairwise-XOR-balanced set of k-bit strings.

    Scans strings in an order seeded by Hadamard codewords (which are
    pairwise at distance exactly k/2) so the greedy pass provably reaches
    size ≥ k for k a power of two, and typically far exceeds it.
    """
    if k % 2:
        raise ValueError("k must be even for the DJ promise")
    chosen: List[int] = []
    candidates = _hadamard_seeds(k) + list(range(min(1 << k, limit)))
    seen = set()
    for cand in candidates:
        if cand in seen:
            continue
        seen.add(cand)
        if all(xor_is_balanced(cand, other, k) for other in chosen):
            chosen.append(cand)
    return chosen


def _hadamard_seeds(k: int) -> List[int]:
    """Hadamard codewords of length k (when k is a power of two)."""
    if k & (k - 1):
        return []
    m = k.bit_length() - 1
    words = []
    for row in range(k):
        bits = 0
        for col in range(k):
            parity = bin(row & col).count("1") & 1
            bits = (bits << 1) | parity
        words.append(bits)
    return words


@dataclass
class FoolingCertificate:
    k: int
    set_size: int
    bits_lower_bound: float
    verified: bool


def certify_dj_lower_bound(k: int, limit: int = 4096) -> FoolingCertificate:
    """Build and verify a fooling set; returns the implied bit bound."""
    fooling = greedy_fooling_set(k, limit=limit)
    verified = all(
        xor_is_balanced(a, b, k)
        for a, b in itertools.combinations(fooling, 2)
    )
    return FoolingCertificate(
        k=k,
        set_size=len(fooling),
        bits_lower_bound=math.log2(max(len(fooling), 1)),
        verified=verified,
    )


def fooling_matrix_rank(fooling: List[int], k: int) -> int:
    """Rank of the ±1 DJ answer matrix restricted to the fooling set.

    Entry (a, b) is +1 if a ⊕ b is constant (only the diagonal, since
    distinct fooling elements XOR to balanced) and −1 if balanced: the
    matrix is 2I − J whose rank is |S| for |S| ≥ 2.
    """
    size = len(fooling)
    matrix = np.full((size, size), -1.0)
    for i, a in enumerate(fooling):
        for j, b in enumerate(fooling):
            x = a ^ b
            ones = bin(x).count("1")
            if ones in (0, k):
                matrix[i, j] = 1.0
    return int(np.linalg.matrix_rank(matrix))
