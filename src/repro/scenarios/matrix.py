"""The matrix runner: fan declared scenarios across worker processes.

Each :class:`~repro.scenarios.spec.Scenario` cell runs one resilient BFS
under the cell's composed adversary (channel faults + Byzantine senders
+ churn schedule) and is re-priced on the cell's classical and quantum
links.  Cells are independent, so the matrix fans them across
:func:`repro.parallel.run_parallel` with one BLAKE2b-derived fault seed
per (root seed, cell) — the same derivation discipline as the E19 sweep,
so adjacent seeds never share fault streams.

The worker is a top-level function with picklable arguments (scenarios
are frozen dataclasses over plain data), so the fan-out works under both
fork and spawn start methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..congest import topologies
from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.network import Network
from ..faults.models import ChannelFaultModel, CompositeFaults
from ..faults.resilience import resilient_bfs
from ..parallel import Task, TaskFailure, derive_seed, run_parallel
from .adversary import ByzantineNodes
from .spec import Scenario

__all__ = ["ScenarioOutcome", "run_matrix", "build_network", "cell_model"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one scenario cell measured.

    Attributes:
        scenario: the cell's name.
        n: network size the cell ran on.
        rounds: physical rounds of the resilient BFS under the cell's
            adversary.
        baseline_rounds: rounds of the faultless BFS on the same network.
        correct: whether the distances match the faultless ground truth.
        security: S derived from the cell's link fidelity.
        dropped / corrupted / delayed / crashes: fault-stat counters.
        classical_us / quantum_us: the cell's rounds priced on its two
            links ("Mind the Õ").
    """

    scenario: str
    n: int
    rounds: int
    baseline_rounds: int
    correct: bool
    security: int
    dropped: int
    corrupted: int
    delayed: int
    crashes: int
    classical_us: float
    quantum_us: float

    @property
    def overhead(self) -> float:
        """Round inflation over the faultless baseline."""
        return self.rounds / max(self.baseline_rounds, 1)


def build_network(topology: str, n: int, seed: int = 0) -> Network:
    """Build the matrix's network family by name.

    ``"grid"`` (⌈n/4⌉×4 grid), ``"path"``, ``"cycle"``, or
    ``"diameter"`` (the diameter-controlled family E20 sweeps, at D=4).
    """
    if topology == "grid":
        rows = max(2, (n + 3) // 4)
        return topologies.grid(rows, 4)
    if topology == "path":
        return topologies.path(n)
    if topology == "cycle":
        return topologies.cycle(n)
    if topology == "diameter":
        return topologies.diameter_controlled(n, 4, seed=seed)
    raise ValueError(f"unknown matrix topology {topology!r}")


def cell_model(scenario: Scenario) -> Optional[ChannelFaultModel]:
    """Compose the cell's channel-fault chain (None: perfect links).

    The declared ``fault_model`` (loss / corruption / delay / flaps)
    runs first; Byzantine sender corruption is appended so adversarial
    rewrites happen to messages that survived the channel.
    """
    models: List[ChannelFaultModel] = []
    if scenario.fault_model is not None:
        models.append(scenario.fault_model)
    if scenario.byzantine:
        models.append(ByzantineNodes(scenario.byzantine))
    if not models:
        return None
    if len(models) == 1:
        return models[0]
    return CompositeFaults(models)


def run_cell(
    scenario: Scenario, topology: str, n: int, seed: int
) -> ScenarioOutcome:
    """Run one scenario cell: resilient BFS under the composed adversary.

    Top-level (picklable) so :func:`run_matrix` can dispatch it through
    :func:`repro.parallel.run_parallel`.
    """
    net = build_network(topology, n, seed=seed)
    truth = bfs_with_echo(net, 0, seed=seed)
    fault_seed = scenario.fault_seed
    if fault_seed is None:
        fault_seed = derive_seed(seed, "scenario", scenario.name)
    word = net.log_n_bits
    try:
        res, run = resilient_bfs(
            net,
            0,
            fault_model=cell_model(scenario),
            crash_schedule=scenario.crash_schedule,
            seed=seed,
            fault_seed=fault_seed,
        )
    except Exception:
        # A sufficiently adversarial cell CAN defeat the resilience
        # layer: the 8-bit frame checksum admits ~1/256 corruption
        # slip-through, and an accepted garbage frame may crash the
        # inner protocol.  That is a protocol failure to *report*
        # (correct=False), not a matrix failure.
        return ScenarioOutcome(
            scenario=scenario.name,
            n=net.n,
            rounds=0,
            baseline_rounds=truth.rounds,
            correct=False,
            security=scenario.security().security,
            dropped=0,
            corrupted=0,
            delayed=0,
            crashes=0,
            classical_us=0.0,
            quantum_us=0.0,
        )
    stats = run.fault_stats
    return ScenarioOutcome(
        scenario=scenario.name,
        n=net.n,
        rounds=res.rounds,
        baseline_rounds=truth.rounds,
        correct=res.dist == truth.dist,
        security=scenario.security().security,
        dropped=stats.dropped,
        corrupted=stats.corrupted,
        delayed=stats.delayed,
        crashes=stats.crashes,
        classical_us=scenario.classical_link.wall_clock_us(res.rounds, word),
        quantum_us=scenario.quantum_link.wall_clock_us(res.rounds, word),
    )


def run_matrix(
    scenarios: Sequence[Scenario],
    topology: str = "grid",
    n: int = 16,
    seed: int = 0,
    jobs: int = 1,
) -> List[Union[ScenarioOutcome, TaskFailure]]:
    """Fan the scenario cells across worker processes.

    Results come back in scenario order; a cell that fails after retries
    occupies its slot as a :class:`~repro.parallel.TaskFailure` rather
    than poisoning the whole matrix.
    """
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"scenario names must be unique, got {names}")
    tasks = [
        Task(
            key=scenario.name,
            fn=run_cell,
            kwargs={
                "scenario": scenario,
                "topology": topology,
                "n": n,
                "seed": seed,
            },
        )
        for scenario in scenarios
    ]
    return run_parallel(tasks, jobs=jobs)
