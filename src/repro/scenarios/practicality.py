"""The "Mind the Õ" axis: round duels re-priced in wall-clock time.

Kerger, Paler et al. (PAPERS.md) observe that the distributed-quantum
literature's round-complexity wins can evaporate in practice: a quantum
CONGEST round pays entanglement distribution, transduction, and error
correction that the Õ hides, so an O(√(nD))-round algorithm on a slow
quantum link can lose outright to the Θ(n)-round classical baseline on
commodity fiber.  This module makes that critique quantitative for the
repository's duels (E20 diameter, E21 APSP, cycle detection):

* :func:`price_duel` re-denominates one
  :class:`~repro.apps.diameter.DiameterDuel` from rounds into
  microseconds under a pair of :class:`~repro.core.cost.LinkCostModel`\\ s
  (one classical, one quantum);
* :func:`break_even_premium` computes f*(n) — the largest per-round
  quantum premium at which the quantum side still wins at size n; the
  quantum advantage is *practical* only where the real premium sits
  below this curve, and since f*(n) grows like the round-ratio
  (≈ √(n/D) for diameter), every premium is eventually beaten;
* :func:`crossover_report` fits both curves and reports the two regimes
  the acceptance criterion asks for: the rounds-advantage crossover
  (quantum wins rounds from n₀) and the latency-dominated wall-clock
  crossover (quantum wins *time* only from the typically much larger
  n₁, or nowhere in the swept range).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.fitting import PowerLawFit, fit_power_law
from ..apps.diameter import DiameterDuel, crossover_n
from ..core.cost import LinkCostModel

__all__ = [
    "WallClockDuel",
    "price_duel",
    "price_duels",
    "break_even_premium",
    "wall_clock_crossover_n",
    "CrossoverReport",
    "crossover_report",
]


def _word_bits(n: int) -> int:
    """The CONGEST word size at n nodes: ⌈log2 n⌉ bits."""
    return max(1, math.ceil(math.log2(max(n, 2))))


@dataclass(frozen=True)
class WallClockDuel:
    """One duel re-priced in microseconds under explicit link models.

    Attributes:
        n: network size.
        diameter: true diameter.
        quantum_rounds / classical_rounds: the round-denominated duel.
        quantum_us / classical_us: the same duel priced on the quantum
            and classical links respectively.
        premium: the per-round price ratio quantum/classical at this n's
            word size — the f of "Mind the Õ".
        break_even_premium: f*(n) = classical_rounds / quantum_rounds;
            the quantum side wins wall-clock iff premium < f*(n).
    """

    n: int
    diameter: int
    quantum_rounds: float
    classical_rounds: int
    quantum_us: float
    classical_us: float
    premium: float
    break_even_premium: float

    @property
    def quantum_wins_rounds(self) -> bool:
        return self.quantum_rounds < self.classical_rounds

    @property
    def quantum_wins_wall_clock(self) -> bool:
        return self.quantum_us < self.classical_us


def break_even_premium(duel: DiameterDuel) -> float:
    """f*(n): the largest per-round quantum premium that still wins.

    With both sides priced per round, quantum wall clock beats classical
    exactly when ``premium × quantum_rounds < classical_rounds``, i.e.
    when the premium is below the round ratio.
    """
    return duel.classical_rounds / max(duel.quantum_rounds, 1e-12)


def price_duel(
    duel: DiameterDuel,
    classical_link: LinkCostModel,
    quantum_link: LinkCostModel,
) -> WallClockDuel:
    """Re-denominate one round duel into microseconds on real links."""
    bits = _word_bits(duel.n)
    classical_round = classical_link.round_time_us(bits)
    quantum_round = quantum_link.round_time_us(bits)
    return WallClockDuel(
        n=duel.n,
        diameter=duel.diameter,
        quantum_rounds=duel.quantum_rounds,
        classical_rounds=duel.classical_rounds,
        quantum_us=duel.quantum_rounds * quantum_round,
        classical_us=duel.classical_rounds * classical_round,
        premium=quantum_round / classical_round,
        break_even_premium=break_even_premium(duel),
    )


def price_duels(
    duels: Sequence[DiameterDuel],
    classical_link: LinkCostModel,
    quantum_link: LinkCostModel,
) -> List[WallClockDuel]:
    """Price every duel of a sweep on the same link pair."""
    return [price_duel(d, classical_link, quantum_link) for d in duels]


def wall_clock_crossover_n(priced: Sequence[WallClockDuel]) -> Optional[int]:
    """Smallest swept n from which the quantum side wins *wall clock*
    at every subsequent point (None if it never does)."""
    winner = None
    for duel in priced:
        if duel.quantum_wins_wall_clock:
            if winner is None:
                winner = duel.n
        else:
            winner = None
    return winner


@dataclass(frozen=True)
class CrossoverReport:
    """The two-regime summary of one priced sweep.

    Attributes:
        rounds_crossover_n: where quantum starts winning rounds.
        wall_clock_crossover_n: where it starts winning microseconds
            under the given links (None: latency-dominated everywhere in
            the swept range).
        premium: the per-round quantum premium at the largest swept n.
        break_even_fit: power-law fit of f*(n); its exponent is the rate
            at which growing instances forgive the quantum premium
            (≈ 1/2 for the diameter duel's √(nD) vs Θ(n)).
        predicted_crossover_n: n where the fitted f*(n) first exceeds the
            premium — the extrapolated practical crossover when the swept
            range never reaches it (None if the fit cannot say).
    """

    rounds_crossover_n: Optional[int]
    wall_clock_crossover_n: Optional[int]
    premium: float
    break_even_fit: Optional[PowerLawFit]
    predicted_crossover_n: Optional[int]
    max_swept_n: int = 0

    #: A predicted wall-clock crossover within this factor of the swept
    #: range still counts as "in reach"; beyond it the premium has pushed
    #: the practical win out of the regime the sweep speaks for.
    REACH_FACTOR = 10

    @property
    def latency_dominated(self) -> bool:
        """True when the quantum round win never pays off in time.

        Wall-clock crossover neither measured in the swept range nor
        predicted within :data:`REACH_FACTOR` of it — the mature-link
        case (crossover just past the sweep) is *not* latency-dominated,
        the near-term case (crossover at ~10^8 nodes) is.
        """
        if self.rounds_crossover_n is None:
            return False
        if self.wall_clock_crossover_n is not None:
            return False
        return (
            self.predicted_crossover_n is None
            or self.predicted_crossover_n
            > self.REACH_FACTOR * self.max_swept_n
        )


def crossover_report(
    duels: Sequence[DiameterDuel],
    classical_link: LinkCostModel,
    quantum_link: LinkCostModel,
) -> CrossoverReport:
    """Fit the two crossover regimes of one sweep under one link pair."""
    priced = price_duels(duels, classical_link, quantum_link)
    premium = priced[-1].premium if priced else float("nan")
    fit: Optional[PowerLawFit] = None
    predicted: Optional[int] = None
    if len(priced) >= 2:
        fit = fit_power_law(
            [d.n for d in priced], [d.break_even_premium for d in priced]
        )
        # Invert f*(n) = c·n^e at the premium: n* = (premium/c)^(1/e).
        if fit.exponent > 1e-9 and fit.coefficient > 0:
            predicted = math.ceil(
                (premium / fit.coefficient) ** (1.0 / fit.exponent)
            )
    return CrossoverReport(
        rounds_crossover_n=crossover_n(duels),
        wall_clock_crossover_n=wall_clock_crossover_n(priced),
        premium=premium,
        break_even_fit=fit,
        predicted_crossover_n=predicted,
        max_swept_n=max((d.n for d in priced), default=0),
    )
