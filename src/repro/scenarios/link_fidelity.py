"""The link-fidelity axis: F ⇒ (ε, δ, S) ⇒ the Lemma 7 round bill.

A quantum link of fidelity F delivers each chunk of a streamed register
intact with probability F — the per-delivery failure is ε = 1 − F, and
no-cloning means a single lost chunk scraps the whole Lemma 7 transfer
(:mod:`repro.faults.fidelity`).  The paper's remedy is leader-side
boosting; this module derives the *security parameter* S — the number of
independent repetitions the leader must schedule so the end-to-end
failure stays below a target δ — directly from F, and sweeps F against
the measured re-amplification bill.

The sweep is the quantitative face of the scenario matrix's fidelity
axis: each point reports how many rounds the F-fidelity link actually
costs once the transfer is re-amplified back to the paper's success
probability, which is what E22 plots against the wall-clock axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.network import Network
from ..core.boosting import repetitions_for
from ..faults.fidelity import reamplified_transfer

__all__ = [
    "SecurityDerivation",
    "derive_security",
    "FidelityCell",
    "fidelity_sweep",
]


@dataclass(frozen=True)
class SecurityDerivation:
    """What a link fidelity F implies for the boosting machinery.

    Attributes:
        fidelity: the per-delivery link fidelity F.
        epsilon: per-delivery failure probability, ε = 1 − F.
        delta: the target end-to-end failure probability.
        security: S — independent repetitions so that ε^S ≤ δ.
    """

    fidelity: float
    epsilon: float
    delta: float
    security: int


def derive_security(fidelity: float, delta: float = 0.01) -> SecurityDerivation:
    """Derive (ε, δ, S) from a link fidelity F.

    S is the boosting repetition count from
    :func:`repro.core.boosting.repetitions_for` with base failure ε: the
    number of independent attempts after which the probability that *all*
    fail drops below δ.  A perfect link (F = 1) needs S = 1.
    """
    if not 0.0 < fidelity <= 1.0:
        raise ValueError(f"fidelity must be in (0, 1], got {fidelity}")
    epsilon = 1.0 - fidelity
    if epsilon <= 0.0:
        security = 1
    else:
        security = repetitions_for(delta, base_failure=epsilon)
    return SecurityDerivation(
        fidelity=fidelity, epsilon=epsilon, delta=delta, security=security
    )


@dataclass(frozen=True)
class FidelityCell:
    """One point of the fidelity axis: F against the measured round bill.

    Attributes:
        fidelity: swept link fidelity F (per chunk delivery).
        epsilon: 1 − F.
        security: S from :func:`derive_security` (per-delivery boosting).
        transfer_fidelity: probability one whole Lemma 7 transfer
            survives — (1 − ε) raised to the number of chunk deliveries.
        base_rounds: measured rounds of one (faultless) transfer attempt.
        repetitions: repetitions sized against the *transfer* fidelity.
        total_rounds: repetitions × base_rounds, the re-amplified bill.
        achieved_failure: residual failure probability after boosting.
    """

    fidelity: float
    epsilon: float
    security: int
    transfer_fidelity: float
    base_rounds: int
    repetitions: int
    total_rounds: int
    achieved_failure: float

    @property
    def overhead(self) -> float:
        """Round inflation over the perfect-link transfer."""
        return self.total_rounds / max(self.base_rounds, 1)


def fidelity_sweep(
    network: Network,
    fidelities: Sequence[float],
    q_bits: int = 32,
    delta: float = 0.01,
    register_value: int = 0x5A5A,
    root: int = 0,
    seed: Optional[int] = None,
) -> List[FidelityCell]:
    """Sweep link fidelity F against the Lemma 7 re-amplification bill.

    Each F becomes a per-delivery loss ``1 − F`` fed to
    :func:`repro.faults.fidelity.reamplified_transfer`, which measures
    one real transfer on the engine and prices the repetitions needed to
    restore the target confidence δ.
    """
    tree = bfs_with_echo(network, root, seed=seed)
    cells: List[FidelityCell] = []
    for fidelity in fidelities:
        sec = derive_security(fidelity, delta=delta)
        transfer = reamplified_transfer(
            network,
            tree,
            register_value=register_value,
            q_bits=q_bits,
            loss_p=sec.epsilon,
            delta=delta,
            seed=seed,
        )
        cells.append(
            FidelityCell(
                fidelity=fidelity,
                epsilon=sec.epsilon,
                security=sec.security,
                transfer_fidelity=transfer.fidelity,
                base_rounds=transfer.base_rounds,
                repetitions=transfer.repetitions,
                total_rounds=transfer.total_rounds,
                achieved_failure=transfer.achieved_failure,
            )
        )
    return cells
