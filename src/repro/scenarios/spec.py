"""Declarative scenario specs: one cell of the matrix, as plain data.

A :class:`Scenario` bundles the three axes of the matrix — link
fidelity, link economics ("Mind the Õ"), and adversary/dynamics — into
one frozen declaration that :class:`~repro.core.framework.FrameworkConfig`
can carry, :mod:`repro.parallel` can pickle across workers, and the E22
experiment can sweep.  A scenario never *runs* anything by itself; it is
the configuration record the matrix runner and ``run_framework`` read.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..core.cost import (
    CLASSICAL_METRO,
    LinkCostModel,
    QUANTUM_OPTIMISTIC,
)
from ..faults.crash import CrashSchedule
from ..faults.models import ChannelFaultModel
from .link_fidelity import SecurityDerivation, derive_security

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One named cell of the scenario matrix.

    Attributes:
        name: unique label; keys parallel-sweep tasks and trace events.
        fidelity: quantum link fidelity F ∈ (0, 1] (per chunk delivery).
        delta: target end-to-end failure probability for boosting.
        classical_link: wall-clock price of a classical message.
        quantum_link: wall-clock price of a quantum message.
        fault_model: channel faults for the run (``None``: perfect links).
        crash_schedule: node churn/outage schedule (``None``: none).
        byzantine: node ids whose sent messages are adversarially
            corrupted (wired into a
            :class:`~repro.scenarios.adversary.ByzantineNodes` model by
            the matrix runner).
        fault_seed: explicit fault stream seed (``None``: derived from
            the sweep's root seed by the runner).
    """

    name: str
    fidelity: float = 1.0
    delta: float = 0.01
    classical_link: LinkCostModel = CLASSICAL_METRO
    quantum_link: LinkCostModel = QUANTUM_OPTIMISTIC
    fault_model: Optional[ChannelFaultModel] = field(
        default=None, compare=False
    )
    crash_schedule: Optional[CrashSchedule] = field(
        default=None, compare=False
    )
    byzantine: Tuple[int, ...] = ()
    fault_seed: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not 0.0 < self.fidelity <= 1.0:
            raise ValueError(
                f"fidelity must be in (0, 1], got {self.fidelity}"
            )
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if not isinstance(self.classical_link, LinkCostModel):
            raise TypeError("classical_link must be a LinkCostModel")
        if not isinstance(self.quantum_link, LinkCostModel):
            raise TypeError("quantum_link must be a LinkCostModel")
        object.__setattr__(
            self, "byzantine", tuple(int(v) for v in self.byzantine)
        )

    def replace(self, **changes) -> "Scenario":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)

    def security(self) -> SecurityDerivation:
        """The (ε, δ, S) derivation for this scenario's fidelity."""
        return derive_security(self.fidelity, delta=self.delta)

    @property
    def premium(self) -> float:
        """Per-round quantum/classical price ratio at a 16-bit word —
        a size-independent summary of the link pair's economics."""
        return (
            self.quantum_link.round_time_us(16)
            / self.classical_link.round_time_us(16)
        )

    def describe(self) -> str:
        """One-line human-readable summary for tables and CLI output."""
        parts = [
            f"F={self.fidelity:g}",
            f"links={self.classical_link.name}/{self.quantum_link.name}",
        ]
        if self.fault_model is not None:
            parts.append(self.fault_model.describe())
        if self.crash_schedule is not None:
            parts.append(f"churn={len(self.crash_schedule.specs)} nodes")
        if self.byzantine:
            parts.append(f"byzantine={len(self.byzantine)} nodes")
        return f"{self.name}: " + ", ".join(parts)
