"""repro.scenarios — the fidelity / latency / adversary scenario matrix.

The paper's round counts assume perfect links and unit-cost messages.
This package parameterizes both assumptions and sweeps them as a matrix
(ROADMAP: "noise-, latency-, and adversary-parameterized scenario
matrix"):

* :mod:`~repro.scenarios.link_fidelity` — quantum links of fidelity F:
  derive ε = 1 − F, target δ, and the security parameter S (boosting
  repetitions), and sweep F against the measured Lemma 7
  re-amplification bill;
* :mod:`~repro.scenarios.practicality` — the "Mind the Õ" layer: price
  round duels on explicit :class:`~repro.core.cost.LinkCostModel`\\ s and
  locate the wall-clock crossover where asymptotic quantum round wins
  become practical time wins;
* :mod:`~repro.scenarios.adversary` — Byzantine senders, node churn, and
  link flaps as deterministic-by-seed sweep axes;
* :mod:`~repro.scenarios.spec` / :mod:`~repro.scenarios.matrix` — the
  frozen :class:`Scenario` declaration and the parallel matrix runner.

Quick tour::

    from repro.core.cost import CLASSICAL_METRO, QUANTUM_OPTIMISTIC
    from repro.scenarios import Scenario, run_matrix

    cells = [
        Scenario("clean"),
        Scenario("noisy", fidelity=0.99,
                 fault_model=link_flap_model(0.05)),
    ]
    outcomes = run_matrix(cells, topology="grid", n=16, seed=0, jobs=2)

E22 (:mod:`repro.experiments.e22_scenarios`) sweeps all three axes and
reports the rounds-advantage vs latency-dominated regimes.
"""

from .adversary import (
    ByzantineNodes,
    byzantine_nodes,
    churn_schedule,
    link_flap_model,
)
from .link_fidelity import (
    FidelityCell,
    SecurityDerivation,
    derive_security,
    fidelity_sweep,
)
from .matrix import ScenarioOutcome, build_network, cell_model, run_matrix
from .practicality import (
    CrossoverReport,
    WallClockDuel,
    break_even_premium,
    crossover_report,
    price_duel,
    price_duels,
    wall_clock_crossover_n,
)
from .spec import Scenario

__all__ = [
    "ByzantineNodes",
    "CrossoverReport",
    "FidelityCell",
    "Scenario",
    "ScenarioOutcome",
    "SecurityDerivation",
    "WallClockDuel",
    "break_even_premium",
    "build_network",
    "byzantine_nodes",
    "cell_model",
    "churn_schedule",
    "crossover_report",
    "derive_security",
    "fidelity_sweep",
    "link_flap_model",
    "price_duel",
    "price_duels",
    "run_matrix",
    "wall_clock_crossover_n",
]
