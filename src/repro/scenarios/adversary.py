"""Adversary and dynamic-topology axes of the scenario matrix.

Three first-class sweep axes beyond the paper's perfect-network setting:

* **Byzantine senders** — :class:`ByzantineNodes` is a
  :class:`~repro.faults.models.ChannelFaultModel` that corrupts (within
  the declared field domains, so bandwidth charges never change) every
  message *sent by* a designated node set.  This is the weak-Byzantine
  channel adversary: compromised nodes lie on the wire but cannot forge
  senders or exceed CONGEST bandwidth.
* **Node churn** — :func:`churn_schedule` draws a deterministic
  crash-*recovery* schedule (nodes leave and rejoin) from the existing
  :func:`~repro.faults.crash.random_crash_schedule` machinery.
* **Link flaps** — :func:`link_flap_model` instantiates the existing
  :class:`~repro.faults.models.GilbertElliottLoss` in its outage corner
  (loss 1.0 while bad), turning the burst chain into an up/down link
  process with a chosen flap rate and mean outage length.

Everything here is deterministic-by-seed, so the matrix axes compose
with the fault-model reuse contract fixed in this PR.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..faults.crash import CrashSchedule, random_crash_schedule
from ..faults.models import (
    CORRUPT,
    DELIVER,
    ChannelFaultModel,
    GilbertElliottLoss,
    _corrupt_payload,
)
from ..congest.messages import Message

__all__ = [
    "ByzantineNodes",
    "byzantine_nodes",
    "churn_schedule",
    "link_flap_model",
]


class ByzantineNodes(ChannelFaultModel):
    """Corrupt every message sent by a fixed set of Byzantine nodes.

    Each message from a Byzantine sender is independently corrupted with
    probability ``p`` (default: always).  Corruption re-randomizes
    ``Field`` payloads within their domains and flips bools — receivers
    see well-formed but adversarial values, which is exactly what the
    checksummed resilience layer must survive.  Honest senders' traffic
    is untouched.
    """

    def __init__(
        self,
        nodes: Sequence[int],
        p: float = 1.0,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"corruption probability must be in [0, 1], got {p}")
        super().__init__(seed)
        self.nodes = frozenset(int(v) for v in nodes)
        self.p = p

    def apply(self, msg, round_no):
        """Corrupt the payload iff the sender is Byzantine (prob. ``p``)."""
        if msg.src not in self.nodes:
            return DELIVER, msg
        rng = self._require_rng()
        if self.p < 1.0 and rng.random() >= self.p:
            return DELIVER, msg
        corrupted = Message(
            src=msg.src,
            dst=msg.dst,
            payload=_corrupt_payload(msg.payload, rng),
            bits=msg.bits,
            round_sent=msg.round_sent,
        )
        return CORRUPT, corrupted

    def describe(self) -> str:
        ids = ",".join(str(v) for v in sorted(self.nodes))
        return f"byzantine nodes {{{ids}}} p={self.p:g}"


def byzantine_nodes(
    n: int,
    fraction: float,
    seed: int = 0,
    protect: Sequence[int] = (0,),
) -> Tuple[int, ...]:
    """Draw a deterministic Byzantine node set of ⌊fraction·n⌋ nodes.

    ``protect`` lists node ids that must stay honest (by default the
    conventional root/leader 0, mirroring ``random_crash_schedule``'s
    protection of the root).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    protected = {int(v) for v in protect}
    eligible = [v for v in range(n) if v not in protected]
    count = min(int(fraction * n), len(eligible))
    if count == 0:
        return ()
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    chosen = rng.choice(len(eligible), size=count, replace=False)
    return tuple(sorted(eligible[int(i)] for i in chosen))


def churn_schedule(
    n: int,
    churn_fraction: float,
    horizon: int,
    seed: int = 0,
    outage_rounds: int = 4,
    protect: Sequence[int] = (0,),
) -> CrashSchedule:
    """A deterministic node-churn schedule: nodes leave and rejoin.

    Thin façade over :func:`~repro.faults.crash.random_crash_schedule`
    forcing crash-*recovery* outages (every churned node comes back after
    ``outage_rounds`` rounds), so the axis models membership churn rather
    than permanent failures.
    """
    if outage_rounds < 1:
        raise ValueError("outage_rounds must be >= 1")
    return random_crash_schedule(
        n,
        crash_fraction=churn_fraction,
        horizon=horizon,
        seed=seed,
        outage_rounds=outage_rounds,
        protect=protect,
    )


def link_flap_model(
    flap_rate: float,
    mean_outage_rounds: float = 3.0,
    seed: Optional[int] = None,
) -> GilbertElliottLoss:
    """A link-flap process: links go fully down and come back up.

    The existing Gilbert–Elliott chain in its outage corner: per directed
    edge, the link enters a flap with probability ``flap_rate`` per
    message, stays down a geometric number of rounds with mean
    ``mean_outage_rounds``, and while down drops everything (loss 1.0).
    """
    if not 0.0 <= flap_rate <= 1.0:
        raise ValueError(f"flap_rate must be in [0, 1], got {flap_rate}")
    if mean_outage_rounds < 1.0:
        raise ValueError(
            f"mean_outage_rounds must be >= 1, got {mean_outage_rounds}"
        )
    return GilbertElliottLoss(
        p_enter_burst=flap_rate,
        p_exit_burst=1.0 / mean_outage_rounds,
        loss_good=0.0,
        loss_bad=1.0,
        seed=seed,
    )
