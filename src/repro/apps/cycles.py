"""Lemmas 23–25: detecting cycles of length at most k in Quantum CONGEST.

Two-phase algorithm following Censor-Hillel et al. [CFGGLO20], with the
quantum speedup in the heavy phase:

* **Light cycles** (all vertices of degree ≤ n^β): simultaneous classical
  BFS to depth ⌈k/2⌉ inside the low-degree subgraph; bounded degree keeps
  i-neighborhoods ≤ n^{iβ}, so all BFSs run together in
  O(k + n^{⌈k/2⌉β}) rounds [PRT12; HW12].
* **Heavy cycles** (some vertex of degree > n^β): the value of a sampled
  vertex s is the length of the smallest ≤k cycle through s or a neighbor
  of s (computable for p vertices in α(p) = O(p + k) rounds); a heavy
  cycle's high-degree vertex gives the minimum multiplicity ℓ ≥ n^β, so
  parallel minimum finding (Lemma 3) over Corollary 9 costs
  O(D + n^{(1−β)/2} p^{−1/2} (D + p + k)) rounds; p = Θ(D) and k ≤ 2D+1.

Balancing with β = (1 + log_n D)/(1 + 2⌈k/2⌉) yields Lemma 23's

    O(D + (Dn)^{1/2 − 1/(4⌈k/2⌉+2)}) rounds,

and the Lemma 24 clustering (d = 2k) removes the D dependence (Lemma 25):

    O((k + (kn)^{1/2 − 1/(4⌈k/2⌉+2)}) log² n).

Error model: one-sided — any reported cycle is real (its length is
verified); with probability ≤ 1/3 an existing cycle may be missed.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..analysis.graphtruth import (
    cycle_value,
    light_subgraph,
    min_cycle_at_most,
)
from ..congest.algorithms.clustering import Clustering, build_clustering
from ..congest.network import Network
from ..core.cost import CostModel, RoundLedger
from ..core.framework import FrameworkConfig, ValueComputer, run_framework
from ..core.semigroup import min_semigroup
from ..queries import minimum as parallel_minimum


def balanced_beta(n: int, diameter: int, k: int) -> float:
    """β = (1 + log_n D)/(1 + 2⌈k/2⌉), clipped into (0, 1]."""
    n = max(n, 3)
    log_n_d = math.log(max(diameter, 1)) / math.log(n)
    beta = (1.0 + log_n_d) / (1.0 + 2.0 * math.ceil(k / 2))
    return min(max(beta, 1.0 / math.log2(n)), 1.0)


def quantum_cycle_bound(n: int, k: int) -> float:
    """Lemma 25: k + (kn)^{1/2 − 1/(4⌈k/2⌉+2)} (log factors dropped)."""
    exponent = 0.5 - 1.0 / (4 * math.ceil(k / 2) + 2)
    return k + (k * n) ** exponent


@dataclass
class CycleDetectionResult:
    """Outcome of a bounded-length cycle search."""

    length: Optional[int]
    rounds: int
    light_rounds: int
    heavy_rounds: int
    beta: float
    detail: Dict[str, int] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.length is not None


class CycleValueComputer(ValueComputer):
    """Corollary 9 computer for Lemma 23's heavy phase.

    x_s = smallest ≤k cycle length through s or a neighbor of s, else the
    k+1 sentinel.  Values computed centrally (the distributed procedure is
    the twin-BFS of [CFGGLO20]); α(p) charged at the paper's p + k bound
    plus the D drain of the result aggregation (see DESIGN.md §2).
    """

    def __init__(self, network: Network, k: int):
        self.network = network
        self.k = k
        self._cycle_cache: Dict[int, Optional[int]] = {}

    def compute(self, indices: Sequence[int]) -> Tuple[Dict[int, Dict[int, int]], int]:
        values = {
            s: {s: cycle_value(self.network.graph, s, self.k, self._cycle_cache)}
            for s in indices
        }
        return values, self.alpha(len(indices))

    def alpha(self, p: int) -> int:
        return p + self.k


def light_cycle_scan(
    network: Network, k: int, beta: float
) -> Tuple[Optional[int], int]:
    """Light phase: smallest ≤k cycle with all vertices of degree ≤ n^β.

    Returns (length or None, charged rounds = ⌈k/2⌉ + n^{⌈k/2⌉·β} capped
    at n, per the simultaneous bounded-degree BFS argument).
    """
    degree_cap = network.n ** beta
    sub = light_subgraph(network.graph, degree_cap)
    found = min_cycle_at_most(sub, k)
    depth = math.ceil(k / 2)
    congestion = min(float(network.n), network.n ** (depth * beta))
    rounds = depth + math.ceil(congestion)
    return found, rounds


def heavy_cycle_search(
    network: Network,
    k: int,
    beta: float,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> Tuple[Optional[int], int]:
    """Heavy phase: parallel minimum finding over per-vertex cycle values.

    Returns (smallest ≤k cycle length through any vertex, or None; rounds).
    The multiplicity hint ℓ = ⌈n^β⌉ reflects that a heavy cycle's
    high-degree vertex puts ≥ n^β vertices at the minimum value.
    """
    p = parallelism if parallelism is not None else max(network.diameter, 1)
    sentinel = k + 1
    computer = CycleValueComputer(network, k)
    multiplicity = max(1, math.ceil(network.n ** beta))

    def algorithm(oracle, rng):
        return parallel_minimum.find_minimum(
            oracle, rng, multiplicity=multiplicity
        )

    run = run_framework(network, algorithm, config=FrameworkConfig(
        parallelism=p, computer=computer, k=network.n, mode=mode,
        seed=seed, semigroup=min_semigroup(sentinel),
    ))
    outcome = run.result
    length = outcome.value if outcome.value is not None and outcome.value <= k else None
    return length, run.total_rounds


def detect_cycle(
    network: Network,
    k: int,
    mode: str = "formula",
    seed: Optional[int] = None,
    beta: Optional[float] = None,
    parallelism: Optional[int] = None,
) -> CycleDetectionResult:
    """Lemma 23: find the smallest cycle of length ≤ k, w.p. ≥ 2/3.

    Args:
        network: the CONGEST network (the input graph itself).
        k: cycle length bound, k ≥ 3 (k ≥ 4 in the paper; k = 3 falls
            back to the heavy search over all vertices).
        beta: light/heavy degree threshold exponent; defaults to the
            paper's balanced choice.
        parallelism: p; defaults to Θ(D) per the paper.
    """
    if k < 3:
        raise ValueError("cycle length bound must be >= 3")
    # Cycles longer than 2D+1 cannot be the girth witness the paper seeks;
    # "we may set k ≤ 2D+1 without loss of generality".
    k_eff = min(k, 2 * max(network.diameter, 1) + 1)
    if beta is None:
        beta = balanced_beta(network.n, network.diameter, k_eff)

    light_len, light_rounds = light_cycle_scan(network, k_eff, beta)
    heavy_len, heavy_rounds = heavy_cycle_search(
        network, k_eff, beta, parallelism=parallelism, mode=mode, seed=seed
    )
    candidates = [l for l in (light_len, heavy_len) if l is not None]
    length = min(candidates) if candidates else None
    return CycleDetectionResult(
        length=length,
        rounds=light_rounds + heavy_rounds,
        light_rounds=light_rounds,
        heavy_rounds=heavy_rounds,
        beta=beta,
        detail={"light": light_rounds, "heavy": heavy_rounds},
    )


def detect_cycle_clustered(
    network: Network,
    k: int,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> CycleDetectionResult:
    """Lemma 25: diameter-independent cycle detection via clustering.

    Builds the d = 2k separated clustering (Lemma 24), extends each
    cluster by a k-hop halo, and runs Lemma 23 on every halo subgraph;
    same-color clusters are ≥ 2k apart so their halos are disjoint and run
    in parallel — the charge per color is the *maximum* over its clusters,
    and colors run sequentially.
    """
    if k < 3:
        raise ValueError("cycle length bound must be >= 3")
    clustering = build_clustering(network, d=2 * k, seed=seed)
    cm = CostModel.for_network(network)
    total_rounds = clustering.charged_rounds
    log_n = max(1, math.ceil(math.log2(max(network.n, 2))))
    # Per-cluster leader election: O(k log² n), paper proof of Lemma 25.
    total_rounds += k * log_n * log_n

    best: Optional[int] = None
    light_total = heavy_total = 0
    for color in range(clustering.num_colors):
        color_max = 0
        for ci in clustering.clusters_of_color(color):
            halo = _halo_subgraph(network, clustering.clusters[ci], k)
            if halo.number_of_nodes() < 3 or halo.number_of_edges() < 3:
                continue
            sub_net = _subgraph_network(network, halo)
            if sub_net is None:
                continue
            sub_seed = None if seed is None else seed + 1000 * color + ci
            result = detect_cycle(sub_net, k, mode=mode, seed=sub_seed)
            color_max = max(color_max, result.rounds)
            light_total += result.light_rounds
            heavy_total += result.heavy_rounds
            if result.length is not None and (best is None or result.length < best):
                best = result.length
        total_rounds += color_max
    return CycleDetectionResult(
        length=best,
        rounds=total_rounds,
        light_rounds=light_total,
        heavy_rounds=heavy_total,
        beta=balanced_beta(network.n, 2 * k, k),
        detail={
            "clustering": clustering.charged_rounds,
            "colors": clustering.num_colors,
        },
    )


def _halo_subgraph(network: Network, cluster: set, k: int) -> nx.Graph:
    """The cluster plus everything within k hops of it."""
    seen = set(cluster)
    frontier = set(cluster)
    for _ in range(k):
        nxt = set()
        for v in frontier:
            for u in network.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    nxt.add(u)
        frontier = nxt
        if not frontier:
            break
    return network.graph.subgraph(seen)


def _subgraph_network(network: Network, sub: nx.Graph) -> Optional[Network]:
    """Relabel a connected subgraph into its own Network, or None."""
    if sub.number_of_nodes() == 0:
        return None
    if not nx.is_connected(sub):
        # Halos are connected by construction (cluster + BFS halo), but a
        # defensive fallback keeps the largest component.
        comp = max(nx.connected_components(sub), key=len)
        sub = sub.subgraph(comp)
    mapping = {v: i for i, v in enumerate(sorted(sub.nodes()))}
    # Inherit the parent's communication model, pinning its *resolved*
    # bandwidth: CONGEST budgets are set by the global n, so a halo must
    # not re-derive a smaller cap from its own size.
    model = network.model
    if network.bandwidth is not None and getattr(model, "bandwidth", None) is None:
        model = dataclasses.replace(model, bandwidth=network.bandwidth)
    return Network(nx.relabel_nodes(sub, mapping), comm_model=model)
