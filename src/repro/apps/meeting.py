"""Lemma 10: meeting scheduling in Quantum CONGEST.

Each of the n nodes holds a private calendar x^{(v)} ∈ {0,1}^k over k time
slots; the goal is argmax_i Σ_v x^{(v)}_i — the slot with most available
participants.  The paper composes Lemma 3 (parallel maximum finding with
p = D, so b = O(⌈√(k/D)⌉)) with Theorem 8 over (A, ⊕) = ([n], +), giving

    O((√(kD) + D) · ⌈log k / log n⌉) rounds,

versus the classical Ω(k/log n + D) lower bound (Lemma 11) matched by the
trivial stream-everything protocol in :mod:`repro.baselines.streaming`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..congest.network import Network
from ..core.cost import CostModel
from ..core.framework import (
    DistributedInput,
    FrameworkConfig,
    FrameworkRun,
    run_framework,
)
from ..core.semigroup import sum_semigroup
from ..queries import minimum as parallel_minimum


@dataclass
class MeetingResult:
    """Outcome of the quantum meeting-scheduling protocol."""

    best_slot: Optional[int]
    availability: Optional[int]
    rounds: int
    batches: int
    run: FrameworkRun

    def correct_against(self, calendars: Dict[int, List[int]]) -> bool:
        """Did we find a slot attaining the true maximum availability?"""
        totals = _totals(calendars)
        return (
            self.best_slot is not None
            and totals[self.best_slot] == max(totals)
        )


def _totals(calendars: Dict[int, List[int]]) -> List[int]:
    k = len(next(iter(calendars.values())))
    totals = [0] * k
    for vec in calendars.values():
        for i, bit in enumerate(vec):
            totals[i] += bit
    return totals


def schedule_meeting(
    network: Network,
    calendars: Dict[int, List[int]],
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> MeetingResult:
    """Run the Lemma 10 protocol; succeeds with probability ≥ 2/3.

    Args:
        network: the CONGEST network; every node must appear in calendars.
        calendars: per-node availability bit vectors of common length k.
        parallelism: batch width p; defaults to the paper's choice p = D.
        mode: ``formula`` (charged rounds) or ``engine`` (measured rounds).
        seed: reproducibility seed.
    """
    for v in network.nodes():
        if v not in calendars:
            raise ValueError(f"node {v} has no calendar")
        if any(bit not in (0, 1) for bit in calendars[v]):
            raise ValueError("calendars must be 0/1 vectors")
    p = parallelism if parallelism is not None else max(network.diameter, 1)
    dist_input = DistributedInput(dict(calendars), sum_semigroup(network.n))

    def algorithm(oracle, rng):
        return parallel_minimum.find_maximum(oracle, rng)

    run = run_framework(network, algorithm, config=FrameworkConfig(
        parallelism=p, dist_input=dist_input, mode=mode, seed=seed,
    ))
    outcome = run.result
    return MeetingResult(
        best_slot=outcome.index,
        availability=outcome.value,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def schedule_weighted_meeting(
    network: Network,
    preferences: Dict[int, List[int]],
    max_weight: int,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> MeetingResult:
    """The paper's generalization remark after Lemma 10.

    "Note that this can be generalized to other domains A and
    non-zero-one inputs, at the cost of an extra q = log(|A|) factor."

    Each node reports a preference weight in [0, max_weight] per slot;
    the protocol finds the slot of maximum total weight over
    (A, ⊕) = ([max_weight·n], +), paying the wider ⌈q/log n⌉ word factor
    through the standard Theorem 8 charging.
    """
    for v in network.nodes():
        if v not in preferences:
            raise ValueError(f"node {v} has no preference vector")
        if any(not 0 <= w <= max_weight for w in preferences[v]):
            raise ValueError(
                f"preferences must lie in [0, {max_weight}]"
            )
    p = parallelism if parallelism is not None else max(network.diameter, 1)
    dist_input = DistributedInput(
        dict(preferences), sum_semigroup(max_weight * network.n)
    )

    def algorithm(oracle, rng):
        return parallel_minimum.find_maximum(oracle, rng)

    run = run_framework(network, algorithm, config=FrameworkConfig(
        parallelism=p, dist_input=dist_input, mode=mode, seed=seed,
    ))
    outcome = run.result
    return MeetingResult(
        best_slot=outcome.index,
        availability=outcome.value,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def quantum_round_bound(k: int, diameter: int, n: int) -> float:
    """The Lemma 10 bound (√(kD) + D)·⌈log k/log n⌉, hidden constant = 1."""
    cm = CostModel(n=n, diameter=max(diameter, 1), word_bits=max(1, math.ceil(math.log2(max(n, 2)))))
    return (math.sqrt(k * cm.diameter) + cm.diameter) * cm.index_words(k)


def classical_round_lower_bound(k: int, diameter: int, n: int) -> float:
    """Lemma 11: Ω(k/log n + D)."""
    return k / max(1, math.ceil(math.log2(max(n, 2)))) + diameter
