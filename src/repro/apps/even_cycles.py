"""Exact even-cycle detection — the paper's remark after Lemma 25.

"Using the same technique, we can implement a quantum algorithm for
detecting cycles of exactly length k = 4, 6, 8, 10 in time
O(n^{1/2 − 1/(2k+2)}) ... using the classical algorithm from
Censor-Hillel et al. for computing small even cycles as a basis (their
algorithm works using so-called color-BFSs) ... detecting even cycles of
any length requires Ω̃(√n) rounds in classical CONGEST [KR18]."

Substitution (DESIGN.md §2): the color-BFS detector is executed
classically against ground truth (exact C_k subgraph search with
distance pruning) and the rounds are charged at the quoted quantum bound;
the classical comparator is charged at the Ω̃(√n) [KR18] floor.  One-sided
error: a reported cycle always exists; an existing cycle is missed with
probability ≤ 1/3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import networkx as nx
import numpy as np

from ..congest.network import Network

SUPPORTED_LENGTHS = (4, 6, 8, 10)


def has_cycle_of_exact_length(graph: nx.Graph, k: int) -> bool:
    """Ground truth: does the graph contain a simple cycle of length k?

    Depth-first path search anchored at each vertex (taken as the
    cycle's minimum label, so each cycle is explored once), pruned by BFS
    distance back to the anchor.  Exponential worst case, fine on the
    sparse instances this repository benchmarks.
    """
    if k < 3:
        raise ValueError("cycle length must be >= 3")
    for anchor in sorted(graph.nodes()):
        dist = nx.single_source_shortest_path_length(graph, anchor, cutoff=k)
        if _dfs_cycle(graph, anchor, anchor, k, {anchor}, dist):
            return True
    return False


def _dfs_cycle(
    graph: nx.Graph,
    anchor,
    current,
    remaining: int,
    on_path: Set,
    dist_to_anchor: Dict,
) -> bool:
    if remaining == 0:
        return False
    for nbr in graph.neighbors(current):
        if nbr == anchor and remaining == 1 and len(on_path) >= 3:
            return True
        if nbr in on_path or nbr < anchor:
            continue
        if dist_to_anchor.get(nbr, math.inf) > remaining - 1:
            continue
        on_path.add(nbr)
        if _dfs_cycle(graph, anchor, nbr, remaining - 1, on_path, dist_to_anchor):
            on_path.discard(nbr)
            return True
        on_path.discard(nbr)
    return False


def quantum_even_cycle_bound(n: int, k: int) -> float:
    """The quoted bound n^{1/2 − 1/(2k+2)} (log factors dropped)."""
    return n ** (0.5 - 1.0 / (2 * k + 2))


def classical_even_cycle_bound(n: int) -> float:
    """[KR18]: Ω̃(√n) for detecting even cycles of any fixed length."""
    return math.sqrt(n)


@dataclass
class EvenCycleResult:
    k: int
    found: bool
    rounds: int
    ground_truth: bool

    @property
    def sound(self) -> bool:
        """One-sided: never report a cycle that does not exist."""
        return self.ground_truth or not self.found


def detect_even_cycle(
    network: Network,
    k: int,
    seed: Optional[int] = None,
    success_probability: float = 0.85,
) -> EvenCycleResult:
    """Detect a C_k (exact even length) with probability ≥ 2/3.

    Args:
        network: the input graph.
        k: one of 4, 6, 8, 10 (the lengths the paper's remark covers).
        success_probability: modeled detection probability when a C_k
            exists (the remark guarantees ≥ 2/3; boosting is external).
    """
    if k not in SUPPORTED_LENGTHS:
        raise ValueError(
            f"exact even-cycle detection supports k in {SUPPORTED_LENGTHS}"
        )
    rng = np.random.default_rng(seed)
    truth = has_cycle_of_exact_length(network.graph, k)
    log_n = max(1, math.ceil(math.log2(max(network.n, 2))))
    rounds = math.ceil(quantum_even_cycle_bound(network.n, k)) * log_n
    found = truth and rng.random() < success_probability
    return EvenCycleResult(k=k, found=found, rounds=rounds, ground_truth=truth)
