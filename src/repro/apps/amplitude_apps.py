"""Section 6: non-oracle techniques in Quantum CONGEST.

Lemmas 27–30 implement amplitude amplification, phase estimation, and
amplitude estimation for *black-box distributed subroutines* that are not
standard oracles: a subroutine U_{|ψ>} preparing a success-flagged state
shared across the network in R rounds.

The CONGEST constructions add only reflections (the "all registers zero?"
AND needs O(D)) and Lemma 7 register sharing, giving:

* Lemma 27/Corollary 28 — amplification: O((R + D)·(1/√p)·log(1/δ)).
* Lemma 29 — phase estimation: O((R/ε)·log(1/δ) + D).
* Corollary 30 — amplitude estimation: O((R + D)·(√p_max/ε)·log(1/δ)).

We model a distributed subroutine by its round cost R and success
probability p; the iterate dynamics follow the exact sin((2j+1)θ) law
(validated against :mod:`repro.quantum.amplitude` in tests), and outcomes
are sampled accordingly while rounds are charged per the lemmas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..congest.network import Network
from ..quantum.amplitude import theoretical_amplified_probability


@dataclass
class DistributedSubroutine:
    """A black-box CONGEST subroutine U_{|ψ>} (Lemma 27's setting).

    Attributes:
        rounds: R, the cost of one application (and of its inverse).
        success_probability: p, the squared amplitude of the good part.
    """

    rounds: int
    success_probability: float

    def __post_init__(self):
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if not 0 <= self.success_probability <= 1:
            raise ValueError("success probability must lie in [0, 1]")


@dataclass
class AmplifiedOutcome:
    succeeded: bool
    rounds: int
    iterations: int
    repetitions: int


def iterate_rounds(network: Network, subroutine: DistributedSubroutine) -> int:
    """Lemma 27: one amplification iterate costs O(R + D) rounds.

    2 applications of U (forward + inverse), the good-part Z (free,
    local), and the distributed all-zero reflection (AND to the leader and
    back: 2D).
    """
    return 2 * subroutine.rounds + 2 * max(network.diameter, 1)


def amplify(
    network: Network,
    subroutine: DistributedSubroutine,
    delta: float,
    rng: np.random.Generator,
) -> AmplifiedOutcome:
    """Corollary 28: obtain the good state w.p. ≥ 1 − δ.

    Repeats optimally-tuned amplification O(log 1/δ) times, checking the
    flag (O(D) rounds) after each attempt; outcome probabilities follow
    the exact amplification law.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    p = subroutine.success_probability
    d = max(network.diameter, 1)
    if p == 0:
        reps = math.ceil(math.log(1.0 / delta))
        return AmplifiedOutcome(False, reps * (subroutine.rounds + 3 * d), 0, reps)

    theta = math.asin(math.sqrt(p))
    iterations = max(0, int(math.floor(math.pi / (4 * theta))))
    p_amp = theoretical_amplified_probability(p, iterations)
    repetitions = max(1, math.ceil(math.log(1.0 / delta) / max(-math.log(max(1 - p_amp, 1e-12)), 1e-12)))
    repetitions = min(repetitions, math.ceil(3 * math.log(1.0 / delta)) + 1)

    per_attempt = subroutine.rounds + iterations * iterate_rounds(network, subroutine) + 2 * d
    rounds = 0
    for attempt in range(1, repetitions + 1):
        rounds += per_attempt
        if rng.random() < p_amp:
            return AmplifiedOutcome(True, rounds, iterations, attempt)
    return AmplifiedOutcome(False, rounds, iterations, repetitions)


def amplification_round_bound(
    network: Network, subroutine: DistributedSubroutine, delta: float
) -> float:
    """Corollary 28's bound (R + D)·(1/√p)·log(1/δ), constants 1."""
    p = max(subroutine.success_probability, 1e-12)
    return (
        (subroutine.rounds + max(network.diameter, 1))
        / math.sqrt(p)
        * math.log(1.0 / delta)
    )


@dataclass
class PhaseOutcome:
    theta_estimate: float
    rounds: int
    repetitions: int


def estimate_phase_distributed(
    network: Network,
    unitary_rounds: int,
    true_theta: float,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> PhaseOutcome:
    """Lemma 29: the leader learns θ to ±ε w.p. ≥ 1 − δ.

    The network applies U^k for superposed k = 1..O(1/ε) (Lemma 7 shares
    the k register: D + log(1/ε) extra), so one run costs O(R/ε + D); the
    leader medians O(log 1/δ) runs.  Outcomes follow the standard QPE
    readout distribution (discretized phase bin ± rounding, validated
    against :mod:`repro.quantum.phase_estimation`).
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    t_bins = 1 << max(1, math.ceil(math.log2(1.0 / epsilon)) + 1)
    repetitions = max(1, math.ceil(9 * math.log(1.0 / delta)) | 1)
    samples = []
    for _ in range(repetitions):
        # QPE readout: nearest bin w.p. ≥ 8/π² split across the two
        # adjacent bins; model as nearest bin w.p. 0.81 else uniform
        # among the two next-nearest (a conservative discretization of
        # the sinc² tail).
        exact_bin = true_theta * t_bins
        lo = math.floor(exact_bin)
        roll = rng.random()
        if roll < 0.81:
            bin_choice = round(exact_bin)
        elif roll < 0.905:
            bin_choice = lo - 1
        else:
            bin_choice = lo + 2
        samples.append((bin_choice % t_bins) / t_bins)
    samples.sort()
    median = samples[len(samples) // 2]
    unitary_applications = t_bins  # Σ 2^j over the t ancillas ≈ 2^t
    rounds = (
        repetitions * unitary_applications * unitary_rounds
        + 2 * max(network.diameter, 1)
        + 2 * max(1, math.ceil(math.log2(t_bins)))
    )
    return PhaseOutcome(theta_estimate=median, rounds=rounds, repetitions=repetitions)


def phase_estimation_round_bound(
    network: Network, unitary_rounds: int, epsilon: float, delta: float
) -> float:
    """Lemma 29: (R/ε)·log(1/δ) + D, constants 1."""
    return unitary_rounds / epsilon * math.log(1.0 / delta) + max(
        network.diameter, 1
    )


@dataclass
class AmplitudeEstimateOutcome:
    p_estimate: float
    rounds: int


def estimate_amplitude_distributed(
    network: Network,
    subroutine: DistributedSubroutine,
    p_max: float,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> AmplitudeEstimateOutcome:
    """Corollary 30: estimate p to ±ε w.p. ≥ 1 − δ.

    Phase estimation on the amplification iterate; the θ-to-p conversion
    means only √p_max/ε iterations are needed [BHMT02].
    """
    if not 0 < p_max <= 1:
        raise ValueError("p_max must be in (0, 1]")
    p = subroutine.success_probability
    if p > p_max:
        raise ValueError("subroutine success probability exceeds p_max")
    theta = math.asin(math.sqrt(p)) / math.pi  # eigenphase of the iterate, in [0, 1/2)
    # Angular precision needed for |p̂ − p| ≤ ε near p ≤ p_max.
    eps_theta = epsilon / (2 * math.pi * math.sqrt(max(p_max, epsilon)))
    phase = estimate_phase_distributed(
        network,
        unitary_rounds=iterate_rounds(network, subroutine),
        true_theta=theta,
        epsilon=eps_theta,
        delta=delta,
        rng=rng,
    )
    p_hat = math.sin(math.pi * phase.theta_estimate) ** 2
    return AmplitudeEstimateOutcome(p_estimate=p_hat, rounds=phase.rounds)


def amplitude_estimation_round_bound(
    network: Network,
    subroutine: DistributedSubroutine,
    p_max: float,
    epsilon: float,
    delta: float,
) -> float:
    """Corollary 30: (R + D)·(√p_max/ε)·log(1/δ), constants 1."""
    return (
        (subroutine.rounds + max(network.diameter, 1))
        * math.sqrt(p_max)
        / epsilon
        * math.log(1.0 / delta)
    )
