"""Triangle finding — the subroutine Corollary 26 consumes.

The paper's girth search first runs quantum triangle finding, citing the
Õ(n^{1/5})-round algorithm of [CFGLO22] (improving the Õ(n^{1/4}) of
[IGM19] mentioned as prior work).  This module provides:

* :func:`detect_triangle_local` — a *real* classical CONGEST protocol run
  on the engine: every node streams its adjacency list to each neighbor
  (one id per edge per round, so max-degree Δ rounds) and then checks
  locally for an edge between two of its neighbors.  This is the folklore
  O(Δ) algorithm, exact and deterministic.
* :func:`detect_triangle_quantum` — the cited quantum subroutine,
  executed against ground truth with rounds charged at Õ(n^{1/5})
  (substitution, DESIGN.md §2); one-sided error.
* bound helpers for the classical Õ(n^{1/3}) [CFGGLO20-style] and both
  quantum rates, used by E17.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..congest.encoding import Field
from ..congest.engine import run_program
from ..congest.messages import Inbox
from ..congest.network import Network
from ..congest.program import Context, NodeProgram


def find_triangle_truth(graph: nx.Graph) -> Optional[Tuple[int, int, int]]:
    """Ground truth: some triangle, or None."""
    for u, v in graph.edges():
        common = set(graph.neighbors(u)) & set(graph.neighbors(v))
        common.discard(u)
        common.discard(v)
        if common:
            w = min(common)
            return tuple(sorted((u, v, w)))
    return None


class NeighborhoodExchangeProgram(NodeProgram):
    """Stream the full adjacency list to every neighbor, one id per round.

    After deg(v) rounds each neighbor of v knows N(v); a node holding
    N(u) for a neighbor u can detect any triangle through the edge (v,u)
    locally.  The node halts once it has sent its whole list and received
    complete lists from all neighbors (list lengths are exchanged in the
    first round as (degree, first-id) pairs).
    """

    # Streams its adjacency list one id per round (carried by its own
    # sends) and then waits on neighbors' lists; silent rounds are no-ops.
    always_active = False

    def __init__(self, node: int):
        self.node = node
        self.sent = 0
        self.expected: Dict[int, int] = {}
        self.received: Dict[int, List[int]] = {}
        self.triangle: Optional[Tuple[int, int, int]] = None

    def _send_next(self, ctx: Context) -> None:
        if self.sent >= len(ctx.neighbors):
            return
        payload = (
            Field(len(ctx.neighbors), ctx.n + 1),
            Field(ctx.neighbors[self.sent], ctx.n),
        )
        for u in ctx.neighbors:
            ctx.send(u, payload)
        self.sent += 1

    def _check_done(self, ctx: Context) -> None:
        if self.sent < len(ctx.neighbors):
            return
        if any(
            len(self.received.get(u, [])) < self.expected.get(u, math.inf)
            for u in ctx.neighbors
        ):
            return
        mine = set(ctx.neighbors)
        for u in ctx.neighbors:
            for w in self.received[u]:
                if w in mine and w != u:
                    self.triangle = tuple(sorted((self.node, u, w)))
        ctx.halt(output=self.triangle)

    def on_start(self, ctx: Context) -> None:
        if not ctx.neighbors:
            ctx.halt(output=None)
            return
        self._send_next(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            degree, neighbor_id = msg.value
            self.expected[msg.src] = degree
            self.received.setdefault(msg.src, []).append(neighbor_id)
        self._send_next(ctx)
        self._check_done(ctx)


@dataclass
class TriangleResult:
    triangle: Optional[Tuple[int, int, int]]
    rounds: int
    method: str

    @property
    def found(self) -> bool:
        return self.triangle is not None


def detect_triangle_local(
    network: Network, seed: Optional[int] = None
) -> TriangleResult:
    """The folklore O(Δ) neighborhood-exchange protocol, engine-measured."""
    programs = {
        v: NeighborhoodExchangeProgram(v) for v in network.nodes()
    }
    result = run_program(network, programs, seed=seed)
    triangles = [t for t in result.outputs.values() if t is not None]
    best = min(triangles) if triangles else None
    return TriangleResult(
        triangle=best, rounds=result.rounds, method="local-exchange"
    )


def quantum_triangle_bound(n: int) -> float:
    """[CFGLO22]: Õ(n^{1/5}) rounds (log factor included as measured)."""
    return n ** 0.2 * max(1, math.ceil(math.log2(max(n, 2))))


def quantum_triangle_bound_igm(n: int) -> float:
    """[IGM19]: the earlier Õ(n^{1/4}) quantum bound."""
    return n ** 0.25 * max(1, math.ceil(math.log2(max(n, 2))))


def classical_triangle_bound(n: int) -> float:
    """Classical CONGEST triangle detection: Õ(n^{1/3}) [CFGGLO20-style]."""
    return n ** (1 / 3) * max(1, math.ceil(math.log2(max(n, 2))))


def detect_triangle_quantum(
    network: Network,
    seed: Optional[int] = None,
    success_probability: float = 0.9,
) -> TriangleResult:
    """The cited Õ(n^{1/5}) quantum subroutine (substituted, one-sided).

    A found triangle is always real (it is verified locally in O(1)
    rounds); an existing triangle is missed with probability ≤ 1/3.
    """
    rng = np.random.default_rng(seed)
    truth = find_triangle_truth(network.graph)
    rounds = math.ceil(quantum_triangle_bound(network.n))
    found = truth if truth is not None and rng.random() < success_probability else None
    return TriangleResult(triangle=found, rounds=rounds, method="quantum-cfglo22")
