"""Corollary 26: girth computation in Quantum CONGEST.

Geometric search over cycle length bounds: first a quantum triangle check
(Õ(n^{1/5}) rounds, cited from [CFGLO22] and charged per DESIGN.md §2),
then Lemma 25 cycle detection at k = 4, 4(1+μ), 4(1+μ)², ... until a cycle
is found.  One-sided error keeps the output sound: a reported girth is the
length of a real cycle, so the only failure mode is overshooting, with
probability ≤ 1/3 overall.

Total: O((1/μ)·(g + (gn)^{1/2 − 1/(4⌈g(1+μ)/2⌉+2)})·log² n) rounds,
beating the classical Ω(√n) lower bound of [FHW12] for small g.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from ..analysis.graphtruth import girth as true_girth
from ..congest.network import Network
from ..core.cost import CostModel
from .cycles import detect_cycle_clustered
from .triangles import find_triangle_truth


@dataclass
class GirthResult:
    girth: Optional[int]
    rounds: int
    iterations: int
    ks_tried: List[int] = field(default_factory=list)
    detail: Dict[str, int] = field(default_factory=dict)

    @property
    def is_acyclic(self) -> bool:
        return self.girth is None


def quantum_girth_bound(n: int, g: int, mu: float = 1.0) -> float:
    """Corollary 26's bound with hidden constants and log factors dropped."""
    exponent = 0.5 - 1.0 / (4 * math.ceil(g * (1 + mu) / 2) + 2)
    return (g + (g * n) ** exponent) / mu


def _has_triangle(network: Network) -> bool:
    return find_triangle_truth(network.graph) is not None


def compute_girth(
    network: Network,
    mu: float = 1.0,
    mode: str = "formula",
    seed: Optional[int] = None,
    max_k: Optional[int] = None,
) -> GirthResult:
    """Compute the girth with probability ≥ 2/3 (Corollary 26).

    Args:
        network: the input graph.
        mu: geometric growth parameter (0 < μ ≤ 1); smaller μ tightens the
            length bound at more iterations.
        max_k: optional cap on the search (defaults to n, which always
            terminates: an n-node graph has no cycle longer than n).
    """
    if not 0 < mu <= 1:
        raise ValueError("mu must be in (0, 1]")
    cm = CostModel.for_network(network)
    rounds = 0
    ks: List[int] = []
    detail: Dict[str, int] = {}

    # Triangle phase: Õ(n^{1/5}) quantum triangle finding [CFGLO22],
    # executed classically and charged at the cited bound.
    rounds += cm.quantum_triangle_rounds()
    detail["triangle-check"] = cm.quantum_triangle_rounds()
    if _has_triangle(network):
        return GirthResult(girth=3, rounds=rounds, iterations=1, ks_tried=[3], detail=detail)

    limit = max_k if max_k is not None else network.n
    k = 4.0
    iterations = 1
    while True:
        k_int = min(int(math.floor(k)), limit)
        ks.append(k_int)
        result = detect_cycle_clustered(network, k_int, mode=mode, seed=seed)
        rounds += result.rounds
        iterations += 1
        if result.length is not None:
            detail["cycle-phase"] = rounds - detail["triangle-check"]
            return GirthResult(
                girth=result.length,
                rounds=rounds,
                iterations=iterations,
                ks_tried=ks,
                detail=detail,
            )
        if k_int >= limit:
            detail["cycle-phase"] = rounds - detail["triangle-check"]
            return GirthResult(
                girth=None,
                rounds=rounds,
                iterations=iterations,
                ks_tried=ks,
                detail=detail,
            )
        k *= 1 + mu


def verify_girth(network: Network, result: GirthResult) -> bool:
    """One-sided soundness check: the reported girth matches ground truth,
    or (error branch) overshoots it; never undershoots."""
    truth = true_girth(network.graph)
    if truth is None:
        return result.girth is None
    if result.girth is None:
        return False
    return result.girth >= truth
