"""Lemmas 20–22: diameter, radius, and average eccentricity.

The graph-theoretic flagship of the framework.  The query string is the
vector of node eccentricities (k = n, x_j = ε(j)); values are not known in
advance but computable on the fly: Lemma 20 ([PRT12; HW12]) computes the
eccentricities of any p nodes in α(p) = O(p + D) classical rounds via
pipelined multi-source BFS.  Corollary 9 with parallel min/max finding
(Lemma 3, p = D, b = O(⌈√(n/D)⌉)) then gives

    diameter / radius:        O(√(nD)) rounds        (Lemma 21)
    ε-additive avg ecc:       Õ(D^{3/2}/ε) rounds    (Lemma 22, σ ≤ D)

recovering [LM18] for the diameter.  In ``engine`` mode the α(p) charge is
*measured* by actually running the multi-source BFS of
:mod:`repro.congest.algorithms.multibfs`; in ``formula`` mode it is
charged at p + 2D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.algorithms.multibfs import eccentricities_of_sources
from ..congest.network import Network
from ..core.framework import (
    FrameworkConfig,
    FrameworkRun,
    ValueComputer,
    run_framework,
)
from ..core.semigroup import max_semigroup, min_semigroup
from ..queries import mean_estimation as parallel_mean
from ..queries import minimum as parallel_minimum


class EccentricityComputer(ValueComputer):
    """Corollary 9 value computer: x_j = ε(j), via Lemma 20.

    ``formula`` mode reads ground-truth eccentricities and charges
    α(p) = p + 2D; ``engine`` mode runs the real pipelined multi-source
    BFS + tree aggregation and uses the measured rounds.
    """

    def __init__(self, network: Network, mode: str, seed: Optional[int] = None):
        self.network = network
        self.mode = mode
        self.seed = seed
        self._tree = None
        self.measured_alpha: List[int] = []

    def compute(self, indices: Sequence[int]) -> Tuple[Dict[int, Dict[int, int]], int]:
        indices = list(indices)
        if self.mode == "engine":
            if self._tree is None:
                self._tree = bfs_with_echo(self.network, 0, seed=self.seed)
            eccs, rounds = eccentricities_of_sources(
                self.network, indices, self._tree, seed=self.seed
            )
            self.measured_alpha.append(rounds)
            return {j: {j: eccs[j]} for j in indices}, rounds
        truth = self.network.eccentricities
        return {j: {j: truth[j]} for j in indices}, self.alpha(len(indices))

    def alpha(self, p: int) -> int:
        if self.mode == "engine" and self.measured_alpha:
            return self.measured_alpha[-1]
        return p + 2 * max(self.network.diameter, 1)

    def fingerprint(self) -> str:
        """Content token for the coalescing scheduler's result memo.

        Eccentricities are a pure function of the topology — mode and
        seed only change round *charges*, never values — so the token
        hashes the topology alone and memo entries stay shareable
        across formula/engine runs of the same graph.
        """
        return f"eccentricity/{self.network.topology_fingerprint()}"


@dataclass
class EccentricityResult:
    value: Optional[int]
    witness: Optional[int]
    rounds: int
    batches: int
    run: FrameworkRun


def _ecc_config(
    network: Network,
    parallelism: Optional[int],
    mode: str,
    seed: Optional[int],
    config: Optional[FrameworkConfig],
) -> FrameworkConfig:
    """Fold flat parameters and an optional base config into one config.

    A caller-supplied ``config`` wins on parallelism/mode/seed (and any
    setup policy it carries); the lemma always owns the computer, k, and
    semigroup, which are overlaid by the caller afterwards.
    """
    if config is not None:
        return config.replace(
            dist_input=None,
            computer=EccentricityComputer(
                network, mode=config.mode, seed=config.seed
            ),
            k=network.n,
        )
    p = parallelism if parallelism is not None else max(network.diameter, 1)
    return FrameworkConfig(
        parallelism=p,
        computer=EccentricityComputer(network, mode=mode, seed=seed),
        k=network.n,
        mode=mode,
        seed=seed,
    )


def _extreme_eccentricity(
    network: Network,
    maximum: bool,
    parallelism: Optional[int],
    mode: str,
    seed: Optional[int],
    config: Optional[FrameworkConfig] = None,
) -> EccentricityResult:
    bound = 2 * network.n  # eccentricities are < n
    semigroup = max_semigroup(bound) if maximum else min_semigroup(bound)
    cfg = _ecc_config(network, parallelism, mode, seed, config).replace(
        semigroup=semigroup
    )

    def algorithm(oracle, rng):
        if maximum:
            return parallel_minimum.find_maximum(oracle, rng)
        return parallel_minimum.find_minimum(oracle, rng)

    run = run_framework(network, algorithm, config=cfg)
    outcome = run.result
    return EccentricityResult(
        value=outcome.value,
        witness=outcome.index,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def compute_diameter(
    network: Network,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
    config: Optional[FrameworkConfig] = None,
) -> EccentricityResult:
    """Lemma 21 (maximum eccentricity); succeeds with probability ≥ 2/3.

    Pass ``config=FrameworkConfig(...)`` to control parallelism, mode,
    seed, and setup policy with one object (the lemma overlays its own
    computer, k, and semigroup); the flat parameters remain for
    convenience and are ignored when ``config`` is given.
    """
    return _extreme_eccentricity(network, True, parallelism, mode, seed, config)


def compute_radius(
    network: Network,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
    config: Optional[FrameworkConfig] = None,
) -> EccentricityResult:
    """Lemma 21 extension to the radius (minimum eccentricity)."""
    return _extreme_eccentricity(network, False, parallelism, mode, seed, config)


@dataclass
class AverageEccentricityResult:
    estimate: float
    epsilon: float
    rounds: int
    batches: int
    run: FrameworkRun

    def error_against(self, network: Network) -> float:
        return abs(self.estimate - network.average_eccentricity)


def estimate_average_eccentricity(
    network: Network,
    epsilon: float,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
    config: Optional[FrameworkConfig] = None,
) -> AverageEccentricityResult:
    """Lemma 22: ε-additive average eccentricity in Õ(D^{3/2}/ε) rounds.

    ε is interpreted on the natural eccentricity scale (rounds), i.e. an
    additive error of ε hops, matching the lemma.  ``config`` takes the
    same role as in :func:`compute_diameter`.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    d = max(network.diameter, 1)
    cfg = _ecc_config(network, parallelism, mode, seed, config).replace(
        semigroup=max_semigroup(2 * network.n)
    )

    def algorithm(oracle, rng):
        return parallel_mean.estimate_mean(
            oracle, sigma=float(d), epsilon=epsilon, rng=rng
        )

    run = run_framework(network, algorithm, config=cfg)
    est = run.result
    return AverageEccentricityResult(
        estimate=est.estimate,
        epsilon=epsilon,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def quantum_diameter_bound(n: int, diameter: int) -> float:
    """Lemma 21: √(nD) (hidden constant 1)."""
    return math.sqrt(n * max(diameter, 1))


def quantum_avg_ecc_bound(diameter: int, epsilon: float) -> float:
    """Lemma 22: D^{3/2}/ε · log(√D/ε)·loglog(√D/ε), constants 1."""
    d = max(diameter, 1)
    base = math.sqrt(d) / epsilon
    log_term = max(math.log(max(base, math.e)), 1.0)
    loglog_term = max(math.log(max(log_term, math.e)), 1.0)
    return d ** 1.5 / epsilon * log_term * loglog_term + d
