"""Theorem 17: distributed Deutsch–Jozsa in Quantum CONGEST.

Problem 16: each node holds x^{(v)} ∈ {0,1}^k with the promise that
x = ⊕_v x^{(v)} (elementwise XOR) is constant or balanced; decide which,
with probability 1.  One superposed query (plus its uncompute) through
Theorem 8 over (A, ⊕) = ({0,1}, XOR) with p = 1 gives

    O(D · ⌈log k / log n⌉) rounds, zero error,

an exponential separation from the exact classical Ω(k/log n + D)
(Theorem 18), witnessed by the streaming baseline in
:mod:`repro.baselines.streaming` and the gadget in
:mod:`repro.lowerbounds.reductions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..congest.network import Network
from ..core.cost import CostModel
from ..core.framework import (
    DistributedInput,
    FrameworkConfig,
    FrameworkRun,
    run_framework,
)
from ..core.semigroup import xor_semigroup
from ..queries import deutsch_jozsa as parallel_dj
from ..quantum.deutsch_jozsa import PromiseViolation, check_promise


@dataclass
class DJResult:
    constant: bool
    rounds: int
    batches: int
    run: FrameworkRun

    @property
    def balanced(self) -> bool:
        return not self.constant


def aggregated_input(inputs: Dict[int, List[int]]) -> List[int]:
    """x = ⊕_v x^{(v)}, the promise string."""
    k = len(next(iter(inputs.values())))
    out = [0] * k
    for vec in inputs.values():
        for i, bit in enumerate(vec):
            out[i] ^= bit
    return out


def solve_distributed_dj(
    network: Network,
    inputs: Dict[int, List[int]],
    mode: str = "formula",
    seed: Optional[int] = None,
) -> DJResult:
    """Decide constant-vs-balanced with zero error (Theorem 17).

    Raises:
        PromiseViolation: if ⊕_v x^{(v)} is neither constant nor balanced.
    """
    for v in network.nodes():
        if v not in inputs:
            raise ValueError(f"node {v} has no input")
    k = len(next(iter(inputs.values())))
    if k % 2:
        raise ValueError("k must be even (Problem 16)")
    check_promise(aggregated_input(inputs))

    dist_input = DistributedInput(dict(inputs), xor_semigroup(1))

    def algorithm(oracle, rng):
        return parallel_dj.decide(oracle)

    run = run_framework(network, algorithm, config=FrameworkConfig(
        parallelism=1, dist_input=dist_input, mode=mode, seed=seed,
    ))
    decision = run.result
    return DJResult(
        constant=decision.constant,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def quantum_round_bound(k: int, diameter: int, n: int) -> float:
    """Theorem 17: D·⌈log k/log n⌉ (hidden constant 1)."""
    cm = CostModel(
        n=n,
        diameter=max(diameter, 1),
        word_bits=max(1, math.ceil(math.log2(max(n, 2)))),
    )
    return max(diameter, 1) * cm.index_words(k)


def classical_exact_lower_bound(k: int, diameter: int, n: int) -> float:
    """Theorem 18: Ω(k/log n + D) for zero-error classical CONGEST."""
    return k / max(1, math.ceil(math.log2(max(n, 2)))) + max(diameter, 1)
