"""APSP workload family in the CONGEST-CLIQUE model (Izumi–Le Gall).

PR 8's second workload family, and the reason the communication-model
layer exists: all-pairs shortest paths is *the* CONGEST-CLIQUE benchmark.
[IL19] give a quantum algorithm running in Õ(n^{1/4}) rounds via
distributed quantum search over distance products, against the best
classical Õ(n^{1/3}) [CKK+15, semiring matrix multiplication] — a
separation that only exists because every pair of nodes shares an
O(log n)-bit logical link.

Two layers, mirroring the repo's formula/engine split:

* **Charged bounds** — :func:`quantum_apsp_bound` /
  :func:`classical_apsp_bound` are the Õ(n^{1/4}) and Õ(n^{1/3}) round
  formulas (log factors explicit, constants 1).  E21 sweeps and fits
  them.
* **Engine harness** — :class:`AdjacencyBroadcastProgram` really runs on
  a :func:`repro.congest.topologies.clique` network: each node
  broadcasts its input-graph adjacency row one O(log n)-bit entry per
  round over the all-pairs links, then solves APSP locally.  It is the
  trivial O(Δ)-round clique algorithm — not [IL19] — but it exercises
  the whole model seam (all-pairs admission, per-pair bandwidth,
  broadcast fan-out n−1) and its outputs are validated against ground
  truth, so the charged-formula layer sits on a substrate that is
  checked end to end.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..congest import topologies
from ..congest.encoding import Field
from ..congest.engine import RunResult, run_program
from ..congest.errors import CongestError
from ..congest.messages import Inbox
from ..congest.network import Network
from ..congest.program import Context, NodeProgram


def quantum_apsp_bound(n: int) -> float:
    """[IL19]: Õ(n^{1/4}) rounds for exact APSP (log factor explicit)."""
    n = max(n, 2)
    return n ** 0.25 * math.ceil(math.log2(n))


def classical_apsp_bound(n: int) -> float:
    """[CKK+15]: Õ(n^{1/3}) rounds via semiring matrix multiplication."""
    n = max(n, 2)
    return n ** (1.0 / 3.0) * math.ceil(math.log2(n))


class AdjacencyBroadcastProgram(NodeProgram):
    """Clique row-broadcast: learn the whole input graph, solve locally.

    Round 0 (``on_start``) broadcasts the node's input-graph degree;
    round r ≥ 1 broadcasts its r-th input neighbor as a
    ``Field(·, domain=n)`` (one id per pair per round — exactly the
    logical-link budget).  After ``max_degree`` edge rounds every node
    has every edge, runs a local BFS from itself, and halts with its
    distance row (−1 marks unreachable nodes).
    """

    def __init__(self, row: Sequence[int]):
        self.row: Tuple[int, ...] = tuple(row)
        self.degrees: Dict[int, int] = {}
        self.edges: set = set()
        self.horizon: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        """Announce this node's input-graph degree to every peer."""
        self.degrees[ctx.node] = len(self.row)
        for u in self.row:
            self.edges.add((min(ctx.node, u), max(ctx.node, u)))
        ctx.broadcast(("d", Field(len(self.row), domain=ctx.n)))

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        """Absorb one broadcast wave; send the next row entry; maybe halt."""
        for msg in inbox:
            tag, field = msg.payload
            if tag == "d":
                self.degrees[msg.src] = field.value
            else:
                self.edges.add((min(msg.src, field.value),
                                max(msg.src, field.value)))
        if ctx.round == 1:
            # Degrees are in; the last edge wave lands at round max_deg+1.
            self.horizon = max(self.degrees.values()) + 1
        if ctx.round <= len(self.row):
            ctx.broadcast(
                ("e", Field(self.row[ctx.round - 1], domain=ctx.n))
            )
        if self.horizon is not None and ctx.round >= self.horizon:
            ctx.halt(self._distance_row(ctx.node, ctx.n))
        else:
            # Peers with longer rows may still be silent toward us in a
            # given round; guarantee we run until the known horizon.
            ctx.request_wakeup()

    def _distance_row(self, source: int, n: int) -> Tuple[int, ...]:
        """BFS over the collected edge set; −1 for unreachable nodes."""
        adj: Dict[int, List[int]] = {v: [] for v in range(n)}
        for a, b in self.edges:
            adj[a].append(b)
            adj[b].append(a)
        dist = [-1] * n
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in adj[v]:
                if dist[u] < 0:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        return tuple(dist)


@dataclass(frozen=True)
class CliqueAPSPResult:
    """Measured output of the engine-mode clique row-broadcast harness.

    Attributes:
        distances: ``distances[v][u]`` = hop distance in the *input*
            graph (−1 if unreachable), as computed locally by node v.
        rounds: engine rounds consumed (Θ(max degree)).
        bits: total bits shipped over the clique's logical links.
        run: the raw engine :class:`~repro.congest.engine.RunResult`.
    """

    distances: Tuple[Tuple[int, ...], ...]
    rounds: int
    bits: int
    run: RunResult


def broadcast_apsp(
    graph: Network,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> CliqueAPSPResult:
    """Solve APSP on ``graph`` by row-broadcast over a CONGEST-CLIQUE.

    The *input* is ``graph``'s topology; the *communication* network is
    a fresh ``topologies.clique(graph.n)`` — n² logical O(log n) links.
    Every message goes through the clique model's admission check, so
    this doubles as an end-to-end test of the PR 8 model seam.
    """
    n = graph.n
    if n < 2:
        raise CongestError(f"broadcast APSP needs n >= 2, got {n}")
    comm = topologies.clique(n)
    programs = {
        v: AdjacencyBroadcastProgram(graph.neighbors(v)) for v in range(n)
    }
    max_degree = max(graph.degree(v) for v in range(n))
    run = run_program(
        comm, programs, seed=seed, schedule=schedule,
        max_rounds=max(max_degree + 8, 16),
    )
    distances = tuple(run.output_of(v) for v in range(n))
    return CliqueAPSPResult(
        distances=distances,
        rounds=run.rounds,
        bits=run.stats.bits,
        run=run,
    )


def verify_distances(graph: Network, result: CliqueAPSPResult) -> bool:
    """Check every node's distance row against single-source BFS truth."""
    for v in range(graph.n):
        truth = graph.distances_from(v)
        row = result.distances[v]
        for u in range(graph.n):
            if row[u] != truth.get(u, -1):
                return False
    return True


@dataclass(frozen=True)
class APSPDuel:
    """One size's quantum-vs-classical CONGEST-CLIQUE APSP comparison.

    ``engine_rounds``/``correct`` are populated only when the duel also
    ran the row-broadcast validation harness (small n).
    """

    n: int
    quantum_rounds: float
    classical_rounds: float
    engine_rounds: Optional[int]
    correct: Optional[bool]

    @property
    def quantum_wins(self) -> bool:
        """Whether the charged quantum bound undercuts the classical one."""
        return self.quantum_rounds < self.classical_rounds


def apsp_duel(
    n: int,
    seed: int = 0,
    validate: Optional[bool] = None,
) -> APSPDuel:
    """Charged Õ(n^{1/4}) vs Õ(n^{1/3}) at size n, optionally validated.

    ``validate`` defaults to ``n <= 64``: below that the duel also runs
    the engine harness on a connected G(n, p) sample and checks its APSP
    output against ground truth, so sweeps stay honest without paying
    O(n²·Δ) message simulation at every size.
    """
    if validate is None:
        validate = n <= 64
    engine_rounds: Optional[int] = None
    correct: Optional[bool] = None
    if validate:
        p = min(0.9, 2.5 * math.log(max(n, 2)) / max(n, 2))
        graph = topologies.erdos_renyi(n, p, seed=seed)
        result = broadcast_apsp(graph, seed=seed)
        engine_rounds = result.rounds
        correct = verify_distances(graph, result)
    return APSPDuel(
        n=n,
        quantum_rounds=quantum_apsp_bound(n),
        classical_rounds=classical_apsp_bound(n),
        engine_rounds=engine_rounds,
        correct=correct,
    )


def sweep_apsp(
    ns: Sequence[int], seed: int = 0
) -> List[APSPDuel]:
    """Duel across sizes; log–log fits of the two columns give ≈ ¼ vs ⅓."""
    return [apsp_duel(n, seed=seed) for n in ns]
