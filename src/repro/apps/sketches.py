"""Amplitude sketches: quantum probabilistic data structures (SNIPPETS #3).

An amplitude sketch ``AS = (m, H, θ, Φ)`` stores a stream of items in the
*phases* of an m-qubit product state ``Φ``.  ``Insert(x)`` applies an
``Rz`` rotation at each of the k hashed qubit positions ``h_i(x)``;
``Query(y)`` builds the reference rotations y would have written and
measures, by interference, how close the state is to containing them;
``Compose`` merges two sketches by adding their accumulated phases
(phase rotations commute, so composition is exact).  The state is always
a product of single-qubit states ``(|0⟩ + e^{iφ_j}|1⟩)/√2``, which is
what makes an m-qubit object a *sketch*: m phase accumulators, not 2^m
amplitudes.

Two implementations, same two-fidelity-level discipline as
:mod:`repro.queries` (and the PR 7 vectorized engine):

* **exact** (small m) — a real :class:`~repro.quantum.statevector.
  Statevector` evolved gate-by-gate with :func:`~repro.quantum.gates.rz`
  (each application lands on the diagonal 1-qubit fast path).  Queries
  apply the *inverse* reference rotations followed by Hadamards on the
  queried buckets and read the probability that all of them return
  ``|0⟩`` — genuine interference on 2^m amplitudes.
* **emulated** (large m) — an m-entry phase-accumulator vector with the
  closed-form overlap ``∏ cos²((φ_j − r_j)/2)``; queries can optionally
  be *sampled* (``shots``) from that law, mirroring the Level-S
  stochastic emulation.

The exact path is the oracle: on overlapping m the two paths agree on
every *decision* output bit-for-bit (membership verdicts, integer count
estimates, heavy-hitter rankings — pinned by
``tests/property/test_prop_sketches.py``) and on raw overlaps to 1e-9
(an m-product and a 2^m-sum cannot reassociate floats identically; the
decision layer is where bit-identity is defined, exactly as the engine's
schedule-equivalence excludes advisory metadata).

Taxonomy (the instantiations): :class:`QCount` (bucket counts, θ=π/6),
:class:`QSimHash` (sign-based ±θ, Hamming/cosine similarity),
:class:`QHeavyHitters` (frequency-weighted θ·log₂(1+f), top-k ranking).

Theorem 1 (space–accuracy): distinguishing membership at false-positive
rate α needs ``m ≥ Ω(log(1/α)/(1−ε))`` — verified empirically as
experiment E23 (α falls with m at fixed load).

Every ``insert``/``query``/``compose`` lands on the observability spine
as a ``sketch`` event (:mod:`repro.obs`); the serving integration
(:mod:`repro.sched.sketch`, :mod:`repro.serve`) adds memo hit and
invalidation edges on top.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.recorder import Recorder, current_recorder
from ..quantum import gates
from ..quantum.statevector import Statevector, uniform_superposition

__all__ = [
    "AmplitudeSketch",
    "QCount",
    "QHeavyHitters",
    "QSimHash",
    "SketchSpec",
    "TAXONOMY",
    "item_token",
    "theorem1_min_qubits",
]

#: Largest m the exact 2^m statevector backend accepts (16 MiB of
#: complex128 at m=20; "auto" switches to emulation well before that).
EXACT_MAX_M = 16

#: Where ``backend="auto"`` draws the line: exact at or below, emulated
#: above.  Chosen so the default overlap regime stays cheap (2^10 amps).
AUTO_EXACT_M = 10


@dataclass(frozen=True)
class TaxonomyRow:
    """One row of the unified sketch taxonomy (SNIPPETS #3 table)."""

    family: str
    m_range: Tuple[int, int]
    k_range: Tuple[int, int]
    theta: float
    phase_pattern: str      # "uniform" | "sign" | "log-weighted"
    query_metric: str
    #: True when permuting the insert stream provably yields a
    #: bit-identical emulated state (integer accumulators); the
    #: log-weighted family is only invariant up to float reassociation.
    order_invariant: bool


#: The unified taxonomy: family name -> its canonical parameters.
TAXONOMY: Dict[str, TaxonomyRow] = {
    "qcount": TaxonomyRow(
        family="qcount", m_range=(32, 128), k_range=(2, 4),
        theta=math.pi / 6, phase_pattern="uniform",
        query_metric="variance-estimator (min-bucket count)",
        order_invariant=True,
    ),
    "qsimhash": TaxonomyRow(
        family="qsimhash", m_range=(32, 128), k_range=(4, 8),
        theta=math.pi / 4, phase_pattern="sign",
        query_metric="hamming distance on sign signature",
        order_invariant=True,
    ),
    "qhh": TaxonomyRow(
        family="qhh", m_range=(64, 128), k_range=(3, 4),
        theta=math.pi / 6, phase_pattern="log-weighted",
        query_metric="top-k ranking by inverted bucket phase",
        order_invariant=False,
    ),
}


def theorem1_min_qubits(alpha: float, eps: float = 0.0) -> int:
    """Theorem 1's lower bound: ``m ≥ log2(1/α) / (1 − ε)`` qubits."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    if not 0 <= eps < 1:
        raise ValueError("eps must be in [0, 1)")
    return math.ceil(math.log2(1.0 / alpha) / (1.0 - eps))


def _item_bytes(x: Any) -> bytes:
    """A stable byte encoding for hashable sketch items."""
    if isinstance(x, bytes):
        return b"b:" + x
    if isinstance(x, bool):
        return b"B:" + (b"1" if x else b"0")
    if isinstance(x, int):
        return b"i:" + str(x).encode()
    if isinstance(x, float):
        return b"f:" + x.hex().encode()
    if isinstance(x, str):
        return b"s:" + x.encode()
    if isinstance(x, tuple):
        return b"t:" + b"|".join(_item_bytes(v) for v in x)
    raise TypeError(
        f"unsupported sketch item type {type(x).__name__!r}; "
        f"use int/str/bytes/float/bool/tuple"
    )


def item_token(x: Any) -> int:
    """A stable 63-bit integer token for an item (memo addressing)."""
    digest = hashlib.blake2b(_item_bytes(x), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class SketchSpec:
    """Everything that parameterizes one sketch, frozen.

    Attributes:
        family: taxonomy key (``qcount`` / ``qsimhash`` / ``qhh``).
        m: qubit (bucket) count.
        k: hash functions per item.
        theta: base rotation angle; ``None`` takes the taxonomy default.
        seed: hash-family seed (two sketches compose only when their
            specs — and therefore hash families — match exactly).
        backend: ``"auto"`` (exact at m ≤ 10, emulated above),
            ``"exact"``, or ``"emulated"``.
    """

    family: str = "qcount"
    m: int = 64
    k: int = 3
    theta: Optional[float] = None
    seed: int = 0
    backend: str = "auto"

    def __post_init__(self):
        if self.family not in TAXONOMY:
            raise ValueError(
                f"unknown sketch family {self.family!r}; "
                f"expected one of {sorted(TAXONOMY)}"
            )
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.backend not in ("auto", "exact", "emulated"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "exact" and self.m > EXACT_MAX_M:
            raise ValueError(
                f"exact backend is bounded at m <= {EXACT_MAX_M} "
                f"(2^m amplitudes); got m={self.m}"
            )
        theta = self.resolved_theta
        if not 0 < theta < math.pi:
            raise ValueError(f"theta must be in (0, pi), got {theta}")

    @property
    def resolved_theta(self) -> float:
        return (
            self.theta if self.theta is not None
            else TAXONOMY[self.family].theta
        )

    @property
    def resolved_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        return "exact" if self.m <= AUTO_EXACT_M else "emulated"

    @property
    def taxonomy(self) -> TaxonomyRow:
        return TAXONOMY[self.family]

    def replace(self, **changes: Any) -> "SketchSpec":
        return replace(self, **changes)

    @property
    def fingerprint(self) -> str:
        """The sketch *identity* fingerprint (stable across inserts).

        Deliberately excludes the backend: exact and emulated lanes over
        the same spec answer the same queries, exactly as execution
        ``mode`` is excluded from :func:`~repro.sched.oracle_fingerprint`.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(
            f"amplitude-sketch/1;{self.family};m={self.m};k={self.k};"
            f"theta={self.resolved_theta!r};seed={self.seed}".encode()
        )
        return h.hexdigest()


class _EmulatedState:
    """Phase-accumulator backend: m floats (plus exact integer counts).

    ``counts`` carries the *integer* net rotation multiplicities for the
    uniform/sign families — integer accumulation is what makes
    insert-order invariance exact rather than approximate.  ``phases``
    carries the real-valued accumulators the log-weighted family needs.
    Only one of the two drives ``bucket_phases`` per sketch (see
    ``weighted``), but both are maintained so compose can merge either.
    """

    def __init__(self, m: int, theta: float, weighted: bool):
        self.m = m
        self.theta = theta
        self.weighted = weighted
        self.counts = np.zeros(m, dtype=np.int64)
        self.phases = np.zeros(m, dtype=np.float64)

    def rotate(self, bucket: int, steps: int, delta: float) -> None:
        self.counts[bucket] += steps
        self.phases[bucket] += delta

    def bucket_phases(self) -> np.ndarray:
        if self.weighted:
            return self.phases
        return self.theta * self.counts.astype(np.float64)

    def overlap(self, ref: np.ndarray, buckets: Sequence[int]) -> float:
        diff = self.bucket_phases()[list(buckets)] - ref[list(buckets)]
        return float(np.prod(np.cos(diff / 2.0) ** 2))

    def state_fidelity(self, other: "_EmulatedState") -> float:
        diff = self.bucket_phases() - other.bucket_phases()
        return float(np.prod(np.cos(diff / 2.0) ** 2))

    def wrapped_angle(self, bucket: int) -> float:
        """The bucket phase wrapped to (−π, π] — what a qubit can hold."""
        phi = float(self.bucket_phases()[bucket])
        return math.atan2(math.sin(phi), math.cos(phi))

    def merge(self, other: "_EmulatedState") -> None:
        self.counts += other.counts
        self.phases += other.phases


class _ExactState:
    """Statevector backend: 2^m amplitudes evolved gate-by-gate.

    Every ``Rz`` application dispatches to the statevector's diagonal
    1-qubit kernel (in-place scaling, no temporaries) — the PR 7
    diagonal-phase fast path.
    """

    def __init__(self, m: int, theta: float, weighted: bool):
        self.m = m
        self.theta = theta
        self.weighted = weighted
        self.sv: Statevector = uniform_superposition(m)

    def rotate(self, bucket: int, steps: int, delta: float) -> None:
        del steps  # the statevector only sees the physical rotation
        self.sv.apply(gates.rz(delta), [bucket])

    def overlap(self, ref: np.ndarray, buckets: Sequence[int]) -> float:
        """Interference readout: P(all queried buckets measure |0⟩).

        Copies the state, applies the inverse reference rotations, then
        Hadamards on the queried buckets; a bucket holding exactly the
        reference phase returns to |+⟩ and measures 0 with certainty.
        """
        probe = self.sv.copy()
        buckets = list(buckets)
        for j in buckets:
            probe.apply(gates.rz(-float(ref[j])), [j])
            probe.apply(gates.H, [j])
        marg = probe.marginal_probabilities(buckets)
        return float(marg[0])

    def state_fidelity(self, other: "_ExactState") -> float:
        return self.sv.fidelity(other.sv)

    def wrapped_angle(self, bucket: int) -> float:
        """Read the bucket's relative phase off the amplitudes.

        For a product state the amplitude ratio between a basis state
        with the bucket bit set and its bit-cleared partner is exactly
        ``e^{iφ_j}`` — phases are only ever knowable mod 2π here, which
        is the physical capacity limit the emulated path mirrors.
        """
        bit = 1 << (self.m - 1 - bucket)
        a0 = self.sv.data[0]
        a1 = self.sv.data[bit]
        return float(np.angle(a1 / a0))

    def merge(self, other: "_ExactState") -> None:
        """Compose by phase addition: elementwise product, renormalized.

        The product of two m-qubit phase-product states (amplitudes
        ``2^{-m/2}·e^{iφ(b)}``) has amplitudes ``2^{-m}·e^{i(φ+ψ)(b)}``;
        multiplying back by ``2^{m/2}`` is exactly the composed sketch.
        """
        merged = self.sv.data * other.sv.data * math.sqrt(self.sv.dim)
        norm = np.linalg.norm(merged)
        self.sv.data = merged / norm


class AmplitudeSketch:
    """The base sketch: ``insert(x)``, ``query(y) → overlap``, ``compose``.

    Args:
        spec: the frozen :class:`SketchSpec` (or keyword fields to build
            one: ``AmplitudeSketch(m=64, k=3, family="qcount")``).
        recorder: observability bus (defaults to the ambient recorder);
            every operation emits a ``sketch`` event.
        name: label carried on emitted events (defaults to the family).
    """

    def __init__(
        self,
        spec: Optional[SketchSpec] = None,
        recorder: Optional[Recorder] = None,
        name: str = "",
        **spec_fields: Any,
    ):
        if spec is None:
            spec = SketchSpec(**spec_fields)
        elif spec_fields:
            raise TypeError("pass either a SketchSpec or its fields, not both")
        self.spec = spec
        self.name = name or spec.family
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        weighted = spec.taxonomy.phase_pattern == "log-weighted"
        theta = spec.resolved_theta
        if spec.resolved_backend == "exact":
            self._state: Any = _ExactState(spec.m, theta, weighted)
        else:
            self._state = _EmulatedState(spec.m, theta, weighted)
        self.inserts = 0
        self.queries = 0
        self.composes = 0
        #: Bumped on every write; the serving layer keys invalidation
        #: decisions on it (a memo entry is stale iff versions differ).
        self.version = 0
        #: Per-item insert multiplicities, needed by the log-weighted
        #: increment (Δ = θ·(log₂(1+c) − log₂ c)) and the Q-HH candidate
        #: ranking.  Unit-weight families skip it to stay O(m).
        self._item_counts: Optional[Dict[int, int]] = (
            {} if weighted else None
        )

    # -- hashing ---------------------------------------------------------

    @property
    def backend(self) -> str:
        return self.spec.resolved_backend

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint

    def buckets(self, x: Any) -> List[int]:
        """The k hashed bucket positions for an item (duplicates kept)."""
        spec = self.spec
        out = []
        for i in range(spec.k):
            h = hashlib.blake2b(digest_size=8)
            h.update(f"sketch-hash/{spec.seed}/{i};".encode())
            h.update(_item_bytes(x))
            out.append(int.from_bytes(h.digest(), "big") % spec.m)
        return out

    def _sign(self, x: Any, i: int) -> int:
        h = hashlib.blake2b(digest_size=1)
        h.update(f"sketch-sign/{self.spec.seed}/{i};".encode())
        h.update(_item_bytes(x))
        return 1 if h.digest()[0] & 1 else -1

    def _increments(self, x: Any, count: int) -> List[Tuple[int, int, float]]:
        """Per-hash ``(bucket, steps, delta)`` rotations for one insert.

        ``count`` is the item's multiplicity *after* this insert.
        Uniform: +θ per hash.  Sign: ±θ per hash.  Log-weighted: the
        increment that moves the accumulated phase from θ·log₂(count) to
        θ·log₂(1+count), so the total is order-independent up to float
        reassociation.
        """
        spec = self.spec
        theta = spec.resolved_theta
        pattern = spec.taxonomy.phase_pattern
        out = []
        for i, bucket in enumerate(self.buckets(x)):
            if pattern == "uniform":
                steps, delta = 1, theta
            elif pattern == "sign":
                s = self._sign(x, i)
                steps, delta = s, s * theta
            else:  # log-weighted
                delta = theta * (math.log2(1 + count) - math.log2(count))
                steps = 1
            out.append((bucket, steps, delta))
        return out

    def _reference(self, y: Any) -> Tuple[np.ndarray, List[int]]:
        """The phase vector one insert of ``y`` writes, plus its buckets."""
        ref = np.zeros(self.spec.m, dtype=np.float64)
        touched: List[int] = []
        for bucket, _steps, delta in self._increments(y, count=1):
            if bucket not in touched:
                touched.append(bucket)
            ref[bucket] += delta
        return ref, sorted(touched)

    # -- operations ------------------------------------------------------

    def insert(self, x: Any) -> None:
        """Rotate the item's hashed buckets; O(k) gates, O(1) state."""
        count = 1
        if self._item_counts is not None:
            token = item_token(x)
            count = self._item_counts.get(token, 0) + 1
            self._item_counts[token] = count
        for bucket, steps, delta in self._increments(x, count):
            self._state.rotate(bucket, steps, delta)
        self.inserts += 1
        self.version += 1
        if self._recorder.active:
            self._recorder.sketch(self.name, "insert", 1)

    def query(
        self,
        y: Any,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Overlap in [0, 1]: 1.0 iff y's buckets hold exactly y's phases.

        With ``shots`` the deterministic law is *sampled* (each shot is
        one interference measurement; the estimate is the success
        fraction) — the stochastic face of the two-level design.
        """
        ref, touched = self._reference(y)
        overlap = self._state.overlap(ref, touched)
        # Clamp float dust so callers can rely on the [0, 1] contract.
        overlap = min(1.0, max(0.0, overlap))
        if shots is not None:
            if shots < 1:
                raise ValueError("shots must be >= 1")
            rng = rng if rng is not None else np.random.default_rng(0)
            overlap = float(rng.binomial(shots, overlap)) / shots
        self.queries += 1
        if self._recorder.active:
            self._recorder.sketch(self.name, "query", 1)
        return overlap

    def baseline_overlap(self, y: Any) -> float:
        """``query(y)`` against an *empty* sketch, in closed form.

        ``∏ cos²(r_j/2)`` over y's touched buckets — no state involved,
        so both backends compute the identical float.  With small θ this
        is close to 1 (one missing rotation barely moves a qubit off
        |+⟩), which is why membership needs a per-item threshold rather
        than a fixed 0.5.
        """
        ref, touched = self._reference(y)
        return float(np.prod(np.cos(ref[touched] / 2.0) ** 2))

    def membership_threshold(self, y: Any) -> float:
        """Midpoint between a perfect member (1.0) and y's empty-bucket
        baseline — the decision boundary :meth:`contains` uses."""
        return (1.0 + self.baseline_overlap(y)) / 2.0

    def contains(self, y: Any, threshold: Optional[float] = None) -> bool:
        """Membership verdict: overlap above the (per-item) threshold.

        One-sided up to collisions: an inserted item (still at exactly
        its reference phases) always reports True; a non-member passes
        only when other items' rotations happen to push its buckets
        toward its reference — the false-positive rate Theorem 1 bounds
        via m.  ``threshold`` defaults to :meth:`membership_threshold`
        (a fixed global cut like 0.5 is wrong for small θ: an empty
        bucket already overlaps its reference at cos²(θ/2) ≈ 0.93).

        The comparison quantizes both sides to 12 decimals first: when a
        collision lands a probe's overlap *analytically on* the
        threshold, the two backends sit one ulp on either side of it,
        and decision-level bit-identity (the emulation's correctness
        contract) must not hinge on that last bit.
        """
        if threshold is None:
            threshold = self.membership_threshold(y)
        return round(self.query(y), 12) >= round(threshold, 12)

    def compose(self, other: "AmplitudeSketch") -> "AmplitudeSketch":
        """A new sketch holding both streams (phases add; exact).

        Only sketches with identical specs (same hash family) compose.
        Error propagation obeys the pure-state angle triangle inequality
        ``ε ≤ ε₁ + ε₂ + 2√(ε₁ε₂)`` — the exact form of the snippet's
        ``ε₁ + ε₂ + O(ε₁·ε₂)`` claim — pinned by the property suite.
        """
        if other.spec != self.spec:
            raise ValueError(
                "compose requires identical specs (same hash family); "
                f"got {self.spec} vs {other.spec}"
            )
        out = AmplitudeSketch(
            self.spec, recorder=self._recorder,
            name=f"{self.name}+{other.name}",
        )
        out._state.merge(self._state)
        out._state.merge(other._state)
        out.inserts = self.inserts + other.inserts
        out.version = 1  # fresh object, one logical write (the merge)
        if out._item_counts is not None:
            for counts in (self._item_counts, other._item_counts):
                for token, c in (counts or {}).items():
                    out._item_counts[token] = (
                        out._item_counts.get(token, 0) + c
                    )
        self.composes += 1
        if self._recorder.active:
            self._recorder.sketch(self.name, "compose", other.inserts)
        return out

    # -- readout helpers -------------------------------------------------

    def state_fidelity(self, other: "AmplitudeSketch") -> float:
        """|⟨Φ_self|Φ_other⟩|² over the full m-qubit state."""
        if other.spec != self.spec:
            raise ValueError("fidelity requires identical specs")
        if type(other._state) is not type(self._state):
            raise ValueError(
                "fidelity requires matching backends; rebuild one side"
            )
        return float(self._state.state_fidelity(other._state))

    def bucket_count(self, bucket: int) -> int:
        """The bucket's rotation count read off its *wrapped* phase.

        Both backends answer through the mod-2π wrapped angle — a qubit
        phase physically cannot hold more — so exact and emulated agree
        bit-for-bit after integer rounding.  Counts are faithful only
        below the period ``round(2π/θ)``; that is the capacity price of
        logarithmic space, not an implementation artifact.
        """
        if not 0 <= bucket < self.spec.m:
            raise ValueError(f"bucket {bucket} out of range")
        theta = self.spec.resolved_theta
        period = max(1, round(2.0 * math.pi / theta))
        angle = self._state.wrapped_angle(bucket)
        return round(angle / theta) % period


class QCount(AmplitudeSketch):
    """Count estimation: min over the item's buckets of wrapped counts.

    The count-min shape: collisions only ever *inflate* a bucket, so the
    minimum across k independent buckets is the tightest (over-)estimate.
    """

    def __init__(self, m: int = 64, k: int = 3, seed: int = 0,
                 backend: str = "auto", **kw: Any):
        super().__init__(
            SketchSpec(family="qcount", m=m, k=k, seed=seed,
                       backend=backend), **kw,
        )

    def estimate(self, x: Any) -> int:
        return min(self.bucket_count(b) for b in set(self.buckets(x)))


class QSimHash(AmplitudeSketch):
    """Sign-based similarity: ±θ rotations, compared by sign signature."""

    def __init__(self, m: int = 64, k: int = 6, seed: int = 0,
                 backend: str = "auto", **kw: Any):
        super().__init__(
            SketchSpec(family="qsimhash", m=m, k=k, seed=seed,
                       backend=backend), **kw,
        )

    def signature(self) -> Tuple[int, ...]:
        """One bit per bucket: the sign of its wrapped phase."""
        return tuple(
            1 if self._state.wrapped_angle(j) > 0 else 0
            for j in range(self.spec.m)
        )

    @staticmethod
    def hamming(a: Sequence[int], b: Sequence[int]) -> int:
        if len(a) != len(b):
            raise ValueError("signature lengths differ")
        return sum(1 for x, y in zip(a, b) if x != y)

    def similarity(self, other: "QSimHash") -> float:
        """1 − normalized Hamming distance between sign signatures."""
        d = self.hamming(self.signature(), other.signature())
        return 1.0 - d / self.spec.m


class QHeavyHitters(AmplitudeSketch):
    """Heavy hitters: log-weighted phases plus a candidate index.

    The quantum state holds frequency mass as θ·log₂(1+f) per bucket;
    the classical side keeps a bounded candidate map (standard for HH
    sketches) so ``top(j)`` can rank observed items by their inverted
    bucket phases.
    """

    def __init__(self, m: int = 64, k: int = 3, seed: int = 0,
                 backend: str = "auto", capacity: int = 64, **kw: Any):
        super().__init__(
            SketchSpec(family="qhh", m=m, k=k, seed=seed,
                       backend=backend), **kw,
        )
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._candidates: Dict[Any, int] = {}

    def insert(self, x: Any) -> None:
        super().insert(x)
        if x in self._candidates or len(self._candidates) < self.capacity:
            self._candidates[x] = self._candidates.get(x, 0) + 1
        else:
            # Space-saving style: evict the weakest candidate and adopt
            # its (over-)count, so frequent late arrivals still surface.
            weakest = min(
                self._candidates, key=lambda c: (self._candidates[c], repr(c))
            )
            floor = self._candidates.pop(weakest)
            self._candidates[x] = floor + 1

    def estimate(self, x: Any) -> int:
        """Frequency inverted from the min bucket phase: 2^{φ/θ} − 1."""
        theta = self.spec.resolved_theta
        phases = [
            abs(self._state.wrapped_angle(b)) for b in set(self.buckets(x))
        ]
        phi = min(phases)
        return max(0, round(2.0 ** (phi / theta) - 1.0))

    def top(self, j: int = 10) -> List[Tuple[Any, int]]:
        """The j candidate items with the largest estimates, ranked.

        Ties break on the candidate map's own count then item repr, so
        rankings are deterministic and backend-independent.
        """
        ranked = sorted(
            self._candidates,
            key=lambda x: (-self.estimate(x), -self._candidates[x], repr(x)),
        )
        return [(x, self.estimate(x)) for x in ranked[:j]]
