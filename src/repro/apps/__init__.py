"""Applications of the framework (paper Sections 4–6)."""

from . import (
    amplitude_apps,
    cycles,
    deutsch_jozsa,
    eccentricity,
    element_distinctness,
    even_cycles,
    girth,
    meeting,
    triangles,
)

__all__ = [
    "amplitude_apps",
    "cycles",
    "deutsch_jozsa",
    "eccentricity",
    "element_distinctness",
    "even_cycles",
    "girth",
    "meeting",
    "triangles",
]
