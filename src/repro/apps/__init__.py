"""Applications of the framework (paper Sections 4–6)."""

from . import (
    amplitude_apps,
    apsp,
    cycles,
    deutsch_jozsa,
    diameter,
    eccentricity,
    element_distinctness,
    even_cycles,
    girth,
    meeting,
    sketches,
    triangles,
)

__all__ = [
    "amplitude_apps",
    "apsp",
    "cycles",
    "deutsch_jozsa",
    "diameter",
    "eccentricity",
    "element_distinctness",
    "even_cycles",
    "girth",
    "meeting",
    "sketches",
    "triangles",
]
