"""Diameter workload family: quantum Lemma 21 vs the classical control.

PR 8's first workload family.  :mod:`repro.apps.eccentricity` already
exposes :func:`~repro.apps.eccentricity.compute_diameter` (Lemma 21 /
[LM18]: O(√(nD)) rounds); this module packages it as a *head-to-head
duel* against the classical pipelined-all-BFS baseline of
:mod:`repro.baselines.diameter` on the same network, under an explicit
communication model, so experiments (E20) and benchmarks can sweep the
pair and fit both log–log exponents from one call.

The duel runs under plain CONGEST (the lemma's setting); passing a
non-default :class:`~repro.congest.models.CommModel` network is rejected
early rather than silently producing rounds that mean something else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines.diameter import (
    classical_all_eccentricities,
    classical_diameter_bound,
)
from ..congest import topologies
from ..congest.errors import CongestError
from ..congest.network import Network
from ..core.framework import FrameworkConfig
from .eccentricity import compute_diameter, quantum_diameter_bound


@dataclass(frozen=True)
class DiameterDuel:
    """One network's quantum-vs-classical diameter comparison.

    Attributes:
        n: network size.
        diameter: the true diameter (ground truth).
        quantum_rounds: mean framework rounds across trials (Lemma 21).
        classical_rounds: rounds of the classical all-sources-BFS control.
        quantum_bound: √(nD), the Lemma 21 target.
        classical_bound: 2n + 3D, the [PRT12; HW12] pipelined-BFS cost.
        accuracy: fraction of trials whose diameter output was exact.
    """

    n: int
    diameter: int
    quantum_rounds: float
    classical_rounds: int
    quantum_bound: float
    classical_bound: float
    accuracy: float

    @property
    def quantum_wins(self) -> bool:
        """Whether the quantum side used strictly fewer rounds."""
        return self.quantum_rounds < self.classical_rounds


def _require_congest(network: Network) -> None:
    """Reject non-default communication models (Lemma 21 is CONGEST)."""
    if network.model.event_token:
        raise CongestError(
            f"the diameter duel is a CONGEST workload; network runs "
            f"{network.model.name!r} — build it without comm_model="
        )


def diameter_duel(
    network: Network,
    trials: int = 3,
    seed: int = 0,
    mode: str = "formula",
    config: Optional[FrameworkConfig] = None,
) -> DiameterDuel:
    """Run quantum diameter (Lemma 21) and the classical control once each.

    ``trials`` re-runs the quantum side with shifted seeds (it is a
    bounded-error algorithm) and averages the rounds; the classical side
    is deterministic.  ``config`` overlays framework knobs exactly as in
    :func:`repro.apps.eccentricity.compute_diameter`.
    """
    if trials < 1:
        raise CongestError(f"trials must be >= 1, got {trials}")
    _require_congest(network)
    base = config if config is not None else FrameworkConfig(
        parallelism=max(network.diameter, 1), mode=mode, seed=seed
    )
    q_total, exact = 0.0, 0
    for trial in range(trials):
        res = compute_diameter(network, config=base.replace(seed=seed + trial))
        q_total += res.rounds
        exact += res.value == network.diameter
    classical = classical_all_eccentricities(network, mode=mode, seed=seed)
    n, d = network.n, max(network.diameter, 1)
    return DiameterDuel(
        n=n,
        diameter=network.diameter,
        quantum_rounds=q_total / trials,
        classical_rounds=classical.rounds,
        quantum_bound=quantum_diameter_bound(n, d),
        classical_bound=classical_diameter_bound(n, d),
        accuracy=exact / trials,
    )


def sweep_diameter(
    ns: Sequence[int],
    diameter: int = 6,
    trials: int = 3,
    seed: int = 0,
    mode: str = "formula",
) -> List[DiameterDuel]:
    """Duel over a family of diameter-controlled graphs at fixed D.

    Holding D fixed while n grows is exactly the regime where the √(nD)
    quantum bound separates from the classical Θ(n): the fitted log–log
    slope of ``quantum_rounds`` should approach 1/2 while the classical
    control's approaches 1.
    """
    duels = []
    for n in ns:
        net = topologies.diameter_controlled(n, diameter, seed=seed)
        duels.append(diameter_duel(net, trials=trials, seed=seed, mode=mode))
    return duels


def speedup_at(duel: DiameterDuel) -> float:
    """Classical-over-quantum round ratio for one duel (≥ 1 means a win)."""
    return duel.classical_rounds / max(duel.quantum_rounds, 1.0)


def crossover_n(duels: Sequence[DiameterDuel]) -> Optional[int]:
    """Smallest swept n from which the quantum side wins every duel."""
    winner = None
    for duel in duels:
        if duel.quantum_wins:
            if winner is None:
                winner = duel.n
        else:
            winner = None
    return winner
