"""Lemmas 12–15: element distinctness in Quantum CONGEST.

Two variants, both composing Lemma 5 (parallel element distinctness with
p = D, so b = O(⌈k^{2/3}/D^{2/3}⌉)) with Theorem 8:

* **Distributed vector** (Lemma 12): each node holds x^{(v)} ∈ [N]^k and
  the target string is the elementwise sum x = Σ_v x^{(v)} over
  (A, ⊕) = ([Nn], +); cost Õ((k^{2/3}D^{1/3} + D)·(⌈log N/log n⌉ +
  ⌈log k/log n⌉)).
* **Between nodes** (Corollary 14): each node holds one value x^{(v)} ∈ [N];
  reduced to the vector variant with k = n, each node's vector having a
  single non-zero entry at its own index.

The classical lower bounds (Lemmas 13/15) are Ω(k/log n + D) and
Ω(n/log n); see :mod:`repro.lowerbounds.reductions` for the gadgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..congest.network import Network
from ..core.cost import CostModel
from ..core.framework import (
    DistributedInput,
    FrameworkConfig,
    FrameworkRun,
    run_framework,
)
from ..core.semigroup import sum_semigroup
from ..queries import element_distinctness as parallel_ed


@dataclass
class DistinctnessResult:
    """Outcome of a distributed element-distinctness run."""

    pair: Optional[Tuple[int, int]]
    value: Optional[int]
    rounds: int
    batches: int
    run: FrameworkRun

    @property
    def all_distinct(self) -> bool:
        return self.pair is None

    def correct_against(self, aggregated: List[int]) -> bool:
        has_collision = len(set(aggregated)) < len(aggregated)
        if self.pair is None:
            return not has_collision
        i, j = self.pair
        return i != j and aggregated[i] == aggregated[j]


def distinctness_distributed_vector(
    network: Network,
    vectors: Dict[int, List[int]],
    max_value: int,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> DistinctnessResult:
    """Lemma 12: element distinctness on x = Σ_v x^{(v)}.

    Args:
        network: the CONGEST network.
        vectors: per-node vectors in [max_value]^k.
        max_value: N, the per-node value bound (the sum lives in [Nn]).
        parallelism: batch width p, default D.
        mode: ``formula`` or ``engine``.
    """
    p = parallelism if parallelism is not None else max(network.diameter, 1)
    dist_input = DistributedInput(
        dict(vectors), sum_semigroup(max_value * network.n)
    )

    def algorithm(oracle, rng):
        return parallel_ed.find_collision(oracle, rng)

    run = run_framework(network, algorithm, config=FrameworkConfig(
        parallelism=p, dist_input=dist_input, mode=mode, seed=seed,
    ))
    outcome = run.result
    return DistinctnessResult(
        pair=outcome.pair,
        value=outcome.value,
        rounds=run.total_rounds,
        batches=run.batches,
        run=run,
    )


def distinctness_between_nodes(
    network: Network,
    values: Dict[int, int],
    max_value: int,
    parallelism: Optional[int] = None,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> DistinctnessResult:
    """Corollary 14: are the n per-node values pairwise distinct?

    Reduction from the corollary's proof: node v's vector is length n with
    its actual value (shifted by +1 so 0 can be the absent marker) at
    index v and zeros elsewhere; a collision in the sum is a collision
    between node values.
    """
    for v in network.nodes():
        if v not in values:
            raise ValueError(f"node {v} has no value")
        if not 0 <= values[v] <= max_value:
            raise ValueError(f"value of node {v} outside [0, {max_value}]")
    vectors = {
        v: [(values[v] + 1) if j == v else 0 for j in range(network.n)]
        for v in network.nodes()
    }
    return distinctness_distributed_vector(
        network,
        vectors,
        max_value=max_value + 1,
        parallelism=parallelism,
        mode=mode,
        seed=seed,
    )


def quantum_round_bound_vector(k: int, diameter: int, n: int, max_value: int) -> float:
    """Lemma 12: (k^{2/3}D^{1/3} + D)(⌈log N/log n⌉ + ⌈log k/log n⌉)."""
    d = max(diameter, 1)
    cm = CostModel(
        n=n, diameter=d, word_bits=max(1, math.ceil(math.log2(max(n, 2))))
    )
    word_factor = cm.words(
        max(1, math.ceil(math.log2(max(max_value * n, 2))))
    ) + cm.index_words(k)
    return (k ** (2 / 3) * d ** (1 / 3) + d) * word_factor


def classical_round_lower_bound(k: int, diameter: int, n: int) -> float:
    """Lemma 13: Ω(k/log n + D)."""
    return k / max(1, math.ceil(math.log2(max(n, 2)))) + diameter
