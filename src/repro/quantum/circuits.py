"""A minimal circuit container plus QFT builders.

Circuits are lists of (matrix, qubits) operations replayed onto a
:class:`~repro.quantum.statevector.Statevector`.  They exist so higher-level
algorithms (phase estimation, amplitude estimation) can be assembled,
inverted, and inspected; there is no transpilation — the simulator applies
arbitrary k-qubit unitaries directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from . import gates
from .statevector import Statevector


@dataclass
class Circuit:
    """An ordered list of unitary operations on named qubits."""

    num_qubits: int
    ops: List[Tuple[np.ndarray, Tuple[int, ...]]] = field(default_factory=list)

    def add(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Circuit":
        matrix = np.asarray(matrix, dtype=np.complex128)
        if not gates.is_unitary(matrix):
            raise ValueError("operation is not unitary")
        self.ops.append((matrix, tuple(qubits)))
        return self

    def h(self, q: int) -> "Circuit":
        return self.add(gates.H, [q])

    def x(self, q: int) -> "Circuit":
        return self.add(gates.X, [q])

    def z(self, q: int) -> "Circuit":
        return self.add(gates.Z, [q])

    def cnot(self, control: int, target: int) -> "Circuit":
        return self.add(gates.CNOT, [control, target])

    def controlled(
        self, matrix: np.ndarray, controls: Sequence[int], targets: Sequence[int]
    ) -> "Circuit":
        controls = list(controls)
        targets = list(targets)
        block = 1 << len(targets)
        full = np.eye(1 << (len(controls) + len(targets)), dtype=np.complex128)
        full[-block:, -block:] = matrix
        return self.add(full, controls + targets)

    def inverse(self) -> "Circuit":
        inv = Circuit(self.num_qubits)
        for matrix, qubits in reversed(self.ops):
            inv.add(matrix.conj().T, qubits)
        return inv

    def run(self, state: Statevector) -> Statevector:
        if state.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        for matrix, qubits in self.ops:
            state.apply(matrix, qubits)
        return state

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of the whole circuit (small circuits only)."""
        dim = 1 << self.num_qubits
        result = np.zeros((dim, dim), dtype=np.complex128)
        for col in range(dim):
            sv = Statevector(self.num_qubits)
            sv.data[:] = 0
            sv.data[col] = 1
            self.run(sv)
            result[:, col] = sv.data
        return result


def qft_matrix(num_qubits: int) -> np.ndarray:
    """The quantum Fourier transform on ``num_qubits`` qubits."""
    dim = 1 << num_qubits
    omega = np.exp(2j * np.pi / dim)
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return omega ** (j * k) / np.sqrt(dim)


def inverse_qft_matrix(num_qubits: int) -> np.ndarray:
    """The inverse QFT (conjugate transpose of the QFT)."""
    return qft_matrix(num_qubits).conj().T
