"""Level-E exact quantum substrate: a dense statevector simulator.

Validates the amplitude laws the stochastic emulation layer
(:mod:`repro.queries`) relies on, and runs the paper's exact algorithms
(Deutsch–Jozsa, phase estimation, amplitude amplification/estimation)
end-to-end on small instances.
"""

from . import (
    amplitude,
    circuits,
    deutsch_jozsa,
    distributed,
    gates,
    grover,
    phase_estimation,
)
from .statevector import Statevector, basis_state, uniform_superposition

__all__ = [
    "amplitude",
    "distributed",
    "circuits",
    "deutsch_jozsa",
    "gates",
    "grover",
    "phase_estimation",
    "Statevector",
    "basis_state",
    "uniform_superposition",
]
