"""Exact amplitude amplification and estimation (Lemmas 27–30 cores).

Given a state-preparation unitary A with A|0> = √(1−p)|φ₀>|0> + √p|φ₁>|1>
(the "good" flag living on a designated qubit), this module builds the
amplitude-amplification iterate

    Q = A · S₀ · A† · S_good

exactly as matrices and runs

* **amplification** (Corollary 28): apply Q^j to boost the good amplitude,
  with the sin((2j+1)θ) law checked in tests; and
* **estimation** (Corollary 30 / [BHMT02]): phase estimation on Q, whose
  eigenphases are ±θ/π with sin²(θ) = p, recovering p to additive error.

The CONGEST versions in ``repro.apps.amplitude_apps`` reuse these exact
routines for small instances and charge network rounds per the lemmas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Set

import numpy as np

from .phase_estimation import estimate_phase
from .statevector import Statevector


def good_probability(state_prep: np.ndarray, good_states: Set[int]) -> float:
    """p = Σ_{i good} |<i|A|0>|²."""
    first_column = np.asarray(state_prep)[:, 0]
    return float(sum(abs(first_column[i]) ** 2 for i in good_states))


def amplification_iterate(
    state_prep: np.ndarray, good_states: Set[int]
) -> np.ndarray:
    """Q = A S₀ A† S_good as a dense unitary."""
    a = np.asarray(state_prep, dtype=np.complex128)
    dim = a.shape[0]
    s_good = np.eye(dim, dtype=np.complex128)
    for i in good_states:
        s_good[i, i] = -1.0
    s_zero = np.eye(dim, dtype=np.complex128)
    s_zero[0, 0] = -1.0
    # Reflections with the convention Q = −A S₀ A† S_good, which rotates by
    # 2θ in the (good, bad) plane; the global sign keeps eigenphases ±2θ.
    return -a @ s_zero @ a.conj().T @ s_good


@dataclass
class AmplificationResult:
    outcome: int
    good: bool
    iterations: int
    success_probability: float


def amplify(
    state_prep: np.ndarray,
    good_states: Set[int],
    rng: np.random.Generator,
    iterations: Optional[int] = None,
) -> AmplificationResult:
    """Run Q^j · A|0> and measure; j defaults to the optimal count."""
    a = np.asarray(state_prep, dtype=np.complex128)
    dim = a.shape[0]
    p = good_probability(a, good_states)
    if iterations is None:
        theta = math.asin(math.sqrt(max(p, 1e-15)))
        iterations = max(0, int(math.floor(math.pi / (4 * theta)))) if p > 0 else 0
    q = amplification_iterate(a, good_states)
    vec = a[:, 0].copy()
    for _ in range(iterations):
        vec = q @ vec
    probs = np.abs(vec) ** 2
    probs = probs / probs.sum()
    outcome = int(rng.choice(dim, p=probs))
    succ = float(sum(probs[i] for i in good_states))
    return AmplificationResult(
        outcome=outcome,
        good=outcome in good_states,
        iterations=iterations,
        success_probability=succ,
    )


def theoretical_amplified_probability(p: float, iterations: int) -> float:
    """sin²((2j+1)·asin(√p)) — the law Corollary 28's analysis uses."""
    theta = math.asin(math.sqrt(p))
    return math.sin((2 * iterations + 1) * theta) ** 2


@dataclass
class AmplitudeEstimate:
    p_estimate: float
    theta_estimate: float
    ancilla_qubits: int
    iterate_applications: int


def estimate_amplitude(
    state_prep: np.ndarray,
    good_states: Set[int],
    ancilla_qubits: int,
    rng: np.random.Generator,
) -> AmplitudeEstimate:
    """Amplitude estimation à la [BHMT02]: QPE on the iterate Q.

    The initial state A|0> is a superposition of the two Q-eigenvectors
    with eigenphases ±2θ/2π, so QPE returns one of ±θ; both give the same
    p̂ = sin²(π·k/2^t) estimate.  Error |p̂ − p| ≤ 2π√(p(1−p))/2^t + π²/4^t.
    """
    a = np.asarray(state_prep, dtype=np.complex128)
    q = amplification_iterate(a, good_states)
    initial = a[:, 0]
    est = estimate_phase(q, initial, ancilla_qubits, rng)
    theta = math.pi * est.theta  # eigenphase 2θ mapped into [0, 2π)·(1/2)
    p_hat = math.sin(theta) ** 2
    return AmplitudeEstimate(
        p_estimate=p_hat,
        theta_estimate=theta,
        ancilla_qubits=ancilla_qubits,
        iterate_applications=est.unitary_applications,
    )
