"""The exact Deutsch–Jozsa algorithm [DJ92] on the statevector simulator.

Given f: {0,1}^q → {0,1} promised constant or balanced, one query to the
phase oracle decides which, with zero error:

    H^{⊗q} · O_f · H^{⊗q} |0...0>   measures to |0...0>  iff  f is constant.

Theorem 17 of the paper lifts exactly this circuit into the Quantum
CONGEST model; ``repro.apps.deutsch_jozsa`` reuses the classification
logic below and charges the network cost of the single distributed query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .statevector import Statevector, uniform_superposition


class PromiseViolation(ValueError):
    """The input is neither constant nor balanced."""


def is_constant(bits: Sequence[int]) -> bool:
    """Is the truth table all-zero or all-one?"""
    total = sum(bits)
    return total == 0 or total == len(bits)


def is_balanced(bits: Sequence[int]) -> bool:
    """Does the truth table have exactly half ones?"""
    return sum(bits) * 2 == len(bits)


def check_promise(bits: Sequence[int]) -> None:
    """Raise PromiseViolation unless the table is constant or balanced."""
    if not (is_constant(bits) or is_balanced(bits)):
        raise PromiseViolation(
            f"|x| = {sum(bits)} out of {len(bits)}: neither constant nor balanced"
        )


@dataclass
class DJOutcome:
    constant: bool
    zero_amplitude_probability: float
    oracle_calls: int = 1


def run(bits: Sequence[int]) -> DJOutcome:
    """Run exact DJ on an explicit truth table of length 2^q.

    Returns the (deterministic) classification.  The probability of
    measuring |0...0> is reported so tests can assert it is exactly 1 for
    constant inputs and exactly 0 for balanced inputs.
    """
    k = len(bits)
    if k < 2 or k & (k - 1):
        raise ValueError(f"truth table length must be a power of two >= 2, got {k}")
    check_promise(bits)
    q = k.bit_length() - 1
    state = uniform_superposition(q)
    diag = np.array([(-1.0) ** b for b in bits], dtype=np.complex128)
    state.apply_diagonal(diag)
    # Final H^{⊗q}: amplitude of |0> is the mean of the phases.
    p_zero = float(abs(state.data.mean()) ** 2 * state.dim)
    constant = p_zero > 0.5
    return DJOutcome(constant=constant, zero_amplitude_probability=p_zero)


def classify(bits: Sequence[int]) -> str:
    """Convenience wrapper returning 'constant' or 'balanced'."""
    return "constant" if run(bits).constant else "balanced"
