"""Exact quantum phase estimation (Lemma 29's algorithmic core).

Standard textbook QPE: ``t`` ancilla qubits in uniform superposition
control powers U^{2^j} on an eigenstate register, followed by an inverse
QFT on the ancillas.  The measured ancilla value k estimates the
eigenphase θ (with U|ψ> = e^{2πiθ}|ψ>, θ ∈ [0,1)) to additive error
2^{-t} with probability ≥ 4/π² ≈ 0.405 for the nearest value, and to
error ε with probability ≥ 1−δ after median boosting — exactly the
scheme Lemma 29 runs with the CONGEST network supplying U.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .circuits import inverse_qft_matrix
from .statevector import Statevector


@dataclass
class PhaseEstimate:
    theta: float
    raw_outcome: int
    ancilla_qubits: int
    unitary_applications: int


def _controlled_power_apply(
    state: Statevector,
    unitary: np.ndarray,
    control: int,
    target_qubits: List[int],
    power: int,
) -> None:
    u_pow = np.linalg.matrix_power(unitary, power)
    state.apply_controlled(u_pow, [control], target_qubits)


def estimate_phase(
    unitary: np.ndarray,
    eigenstate: np.ndarray,
    ancilla_qubits: int,
    rng: np.random.Generator,
) -> PhaseEstimate:
    """One QPE shot: returns θ̂ = k/2^t for the measured ancilla value k."""
    unitary = np.asarray(unitary, dtype=np.complex128)
    m_dim = unitary.shape[0]
    if m_dim & (m_dim - 1):
        raise ValueError("unitary dimension must be a power of two")
    m = m_dim.bit_length() - 1
    t = ancilla_qubits
    total = t + m

    state = Statevector(total)
    # Load the eigenstate into the target register (qubits t..t+m-1).
    init = np.zeros(1 << total, dtype=np.complex128)
    eigenstate = np.asarray(eigenstate, dtype=np.complex128)
    init[: m_dim] = eigenstate  # ancillas all zero (most significant bits)
    state.data = init / np.linalg.norm(init)

    from .gates import H  # local import to avoid cycle at module load

    for a in range(t):
        state.apply(H, [a])
    applications = 0
    for a in range(t):
        # Ancilla a is the (t-1-a)-th binary digit: control U^{2^{t-1-a}}.
        power = 1 << (t - 1 - a)
        _controlled_power_apply(state, unitary, a, list(range(t, total)), power)
        applications += power

    state.apply(inverse_qft_matrix(t), list(range(t)))
    outcome_probs = state.marginal_probabilities(list(range(t)))
    outcome = int(rng.choice(1 << t, p=outcome_probs / outcome_probs.sum()))
    return PhaseEstimate(
        theta=outcome / (1 << t),
        raw_outcome=outcome,
        ancilla_qubits=t,
        unitary_applications=applications,
    )


def _circular_median(thetas: List[float]) -> float:
    """Median of phases in [0,1), unwrapped around the circle.

    Shifts all samples so the first is at 0.5, takes the ordinary median,
    and shifts back — adequate when samples concentrate near the truth,
    which is what median boosting guarantees.
    """
    if not thetas:
        raise ValueError("no samples")
    shift = 0.5 - thetas[0]
    shifted = sorted((t + shift) % 1.0 for t in thetas)
    med = shifted[len(shifted) // 2]
    return (med - shift) % 1.0


def estimate_phase_boosted(
    unitary: np.ndarray,
    eigenstate: np.ndarray,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> PhaseEstimate:
    """Median-of-repetitions QPE: error ≤ ε with probability ≥ 1 − δ.

    Uses t = ⌈log2(1/ε)⌉ + 2 ancillas per shot and O(log(1/δ)) shots,
    matching Lemma 29's O((R/ε)·log(1/δ)) round structure when each U
    application costs R rounds.
    """
    t = max(1, math.ceil(math.log2(1.0 / epsilon))) + 2
    shots = max(1, math.ceil(18 * math.log(1.0 / delta)) | 1)  # odd count
    samples = []
    applications = 0
    last = None
    for _ in range(shots):
        last = estimate_phase(unitary, eigenstate, t, rng)
        samples.append(last.theta)
        applications += last.unitary_applications
    return PhaseEstimate(
        theta=_circular_median(samples),
        raw_outcome=last.raw_outcome,
        ancilla_qubits=t,
        unitary_applications=applications,
    )
