"""Standard gate matrices for the statevector simulator."""

from __future__ import annotations

import numpy as np

_SQRT2 = np.sqrt(2.0)

I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
    dtype=np.complex128,
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex128,
)


def rx(theta: float) -> np.ndarray:
    """Rotation about X by theta."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y by theta."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z by theta."""
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]],
        dtype=np.complex128,
    )


def phase(theta: float) -> np.ndarray:
    """Phase gate diag(1, e^{iθ})."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=np.complex128)


def multi_controlled_z(num_qubits: int) -> np.ndarray:
    """Z on |1...1>: diag(1, ..., 1, -1) on 2^num_qubits dimensions."""
    d = np.ones(1 << num_qubits, dtype=np.complex128)
    d[-1] = -1
    return np.diag(d)


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Check U·U† = I within tolerance."""
    matrix = np.asarray(matrix)
    return bool(
        np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]), atol=atol)
    )
