"""Exact Grover search on the statevector simulator.

This module provides the ground truth that the Level-S emulation layer is
checked against: running Grover's iterate exactly and confirming the
success amplitude law

    P(success after j iterations) = sin²((2j+1)·θ),   θ = asin(√(t/N)),

which Lemma 2's analysis (via [BBHT98]) builds on.  It also implements the
BBHT unknown-t exponential search loop *with exact per-run success
probabilities*, so its expected query count can be measured and compared
to the O(√(N/t)) bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from .statevector import Statevector, uniform_superposition


def oracle_phase_flip(state: Statevector, marked: Set[int]) -> Statevector:
    """Apply the phase oracle O|i> = (-1)^{x_i}|i> for the marked set."""
    diag = np.ones(state.dim, dtype=np.complex128)
    for i in marked:
        diag[i] = -1.0
    return state.apply_diagonal(diag)


def diffusion(state: Statevector) -> Statevector:
    """Inversion about the mean: 2|s><s| − I with |s> uniform."""
    mean = state.data.mean()
    state.data = 2.0 * mean - state.data
    return state


def grover_state(num_qubits: int, marked: Set[int], iterations: int) -> Statevector:
    """The exact state after ``iterations`` Grover iterations."""
    state = uniform_superposition(num_qubits)
    for _ in range(iterations):
        oracle_phase_flip(state, marked)
        diffusion(state)
    return state


def success_probability(num_qubits: int, marked: Set[int], iterations: int) -> float:
    """Exact probability that measuring after j iterations yields a marked index."""
    state = grover_state(num_qubits, marked, iterations)
    probs = state.probabilities()
    return float(sum(probs[i] for i in marked))


def theoretical_success_probability(n_items: int, t: int, iterations: int) -> float:
    """The closed-form sin²((2j+1)θ) law used by the emulation layer."""
    if t == 0:
        return 0.0
    theta = math.asin(math.sqrt(t / n_items))
    return math.sin((2 * iterations + 1) * theta) ** 2


def optimal_iterations(n_items: int, t: int) -> int:
    """⌊(π/4)·√(N/t)⌋, the canonical Grover iteration count."""
    if t == 0:
        return 0
    theta = math.asin(math.sqrt(t / n_items))
    return max(0, int(math.floor(math.pi / (4 * theta))))


@dataclass
class GroverRun:
    """Outcome of an exact Grover search."""

    result: Optional[int]
    iterations_used: int
    oracle_calls: int


def search(
    num_qubits: int,
    marked: Set[int],
    rng: np.random.Generator,
    iterations: Optional[int] = None,
) -> GroverRun:
    """One exact Grover run with measurement.

    If ``iterations`` is None and the marked count is known, uses the
    optimal count.  Returns the measured index (marked or not).
    """
    n_items = 1 << num_qubits
    if iterations is None:
        iterations = optimal_iterations(n_items, len(marked))
    state = grover_state(num_qubits, marked, iterations)
    outcome = state.measure(rng)
    result = outcome if outcome in marked else None
    return GroverRun(result=result, iterations_used=iterations,
                     oracle_calls=iterations)


def bbht_search(
    num_qubits: int,
    marked: Set[int],
    rng: np.random.Generator,
    growth: float = 6 / 5,
    max_oracle_calls: Optional[int] = None,
) -> GroverRun:
    """BBHT exponential search for unknown t, run exactly.

    Repeatedly picks a uniformly random iteration count below a growing
    cap m, runs exact Grover, and checks the measured index with one extra
    oracle call.  Expected oracle calls are O(√(N/t)) [BBHT98].
    """
    n_items = 1 << num_qubits
    m = 1.0
    calls = 0
    limit = max_oracle_calls if max_oracle_calls is not None else 20 * n_items
    while calls <= limit:
        j = int(rng.integers(0, max(1, int(math.ceil(m)))))
        state = grover_state(num_qubits, marked, j)
        outcome = state.measure(rng)
        calls += j + 1  # +1 for the classical verification query
        if outcome in marked:
            return GroverRun(result=outcome, iterations_used=j, oracle_calls=calls)
        if not marked:
            # With no marked items the loop cannot succeed; the standard
            # convention is to stop after ~√N total work and report failure.
            if calls >= 3 * math.sqrt(n_items) + 3:
                break
        m = min(growth * m, math.sqrt(n_items))
    return GroverRun(result=None, iterations_used=0, oracle_calls=calls)
