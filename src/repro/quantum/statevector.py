"""A dense statevector quantum simulator.

qiskit is not available offline, so the repository carries its own small,
exact simulator.  It is used to *validate* the amplitude laws that the
Level-S stochastic emulation layer (``repro.queries``) relies on — e.g.
that Grover's success probability after j iterations is sin²((2j+1)θ) —
and to run the paper's exact algorithms (Deutsch–Jozsa, phase estimation,
amplitude estimation) end-to-end on small instances.

Conventions: qubit 0 is the most significant bit of a basis-state index,
so ``|q0 q1 ... q_{n-1}>`` has index ``q0·2^{n-1} + ... + q_{n-1}``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

_ATOL = 1e-9


class Statevector:
    """An n-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int, state: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits
        if state is None:
            self.data = np.zeros(self.dim, dtype=np.complex128)
            self.data[0] = 1.0
        else:
            state = np.asarray(state, dtype=np.complex128)
            if state.shape != (self.dim,):
                raise ValueError(
                    f"state must have shape ({self.dim},), got {state.shape}"
                )
            norm = np.linalg.norm(state)
            if abs(norm - 1.0) > 1e-6:
                raise ValueError(f"state is not normalized (|ψ| = {norm})")
            self.data = state.copy()

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------

    def apply(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a k-qubit unitary to the given qubit indices (in order)."""
        qubits = list(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubit indices in {qubits}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range")
        tensor = self.data.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, qubits, range(k))
        shaped = tensor.reshape(1 << k, -1)
        shaped = matrix @ shaped
        tensor = shaped.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, range(k), qubits)
        self.data = np.ascontiguousarray(tensor.reshape(self.dim))
        return self

    def apply_controlled(
        self,
        matrix: np.ndarray,
        controls: Sequence[int],
        targets: Sequence[int],
    ) -> "Statevector":
        """Apply ``matrix`` to ``targets`` conditioned on all controls = 1."""
        controls = list(controls)
        targets = list(targets)
        k = len(controls)
        t = len(targets)
        full = np.eye(1 << (k + t), dtype=np.complex128)
        block = 1 << t
        full[-block:, -block:] = matrix
        return self.apply(full, controls + targets)

    def apply_diagonal(self, phases: np.ndarray) -> "Statevector":
        """Multiply amplitudes elementwise (a diagonal unitary)."""
        phases = np.asarray(phases, dtype=np.complex128)
        if phases.shape != (self.dim,):
            raise ValueError("diagonal must cover the full state")
        if not np.allclose(np.abs(phases), 1.0, atol=1e-8):
            raise ValueError("diagonal entries must have unit modulus")
        self.data = self.data * phases
        return self

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def probability_of(self, basis_state: int) -> float:
        return float(abs(self.data[basis_state]) ** 2)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring the given qubits."""
        qubits = list(qubits)
        tensor = self.probabilities().reshape([2] * self.num_qubits)
        keep = qubits
        drop = [q for q in range(self.num_qubits) if q not in keep]
        marg = tensor.transpose(keep + drop).reshape(
            1 << len(keep), -1
        ).sum(axis=1)
        return marg

    def sample(self, rng: np.random.Generator, shots: int = 1) -> np.ndarray:
        """Sample basis-state indices from the full distribution."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        return rng.choice(self.dim, size=shots, p=probs)

    def measure(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

    def inner(self, other: "Statevector") -> complex:
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(self.inner(other)) ** 2)

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data)

    def is_normalized(self) -> bool:
        return bool(abs(np.linalg.norm(self.data) - 1.0) < 1e-6)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """|index> on the given number of qubits."""
    sv = Statevector(num_qubits)
    if index:
        sv.data[0] = 0.0
        sv.data[index] = 1.0
    return sv


def uniform_superposition(num_qubits: int) -> Statevector:
    """H^{⊗n}|0...0> without applying gates one by one."""
    sv = Statevector(num_qubits)
    sv.data[:] = 1.0 / np.sqrt(sv.dim)
    return sv
