"""A dense statevector quantum simulator.

qiskit is not available offline, so the repository carries its own small,
exact simulator.  It is used to *validate* the amplitude laws that the
Level-S stochastic emulation layer (``repro.queries``) relies on — e.g.
that Grover's success probability after j iterations is sin²((2j+1)θ) —
and to run the paper's exact algorithms (Deutsch–Jozsa, phase estimation,
amplitude estimation) end-to-end on small instances.

Conventions: qubit 0 is the most significant bit of a basis-state index,
so ``|q0 q1 ... q_{n-1}>`` has index ``q0·2^{n-1} + ... + q_{n-1}``.

Gate application is tiered for speed (the paper's circuits are dominated
by 1- and 2-qubit gates):

* **single-qubit kernel** — a reshaped view ``(2^q, 2, 2^{n-1-q})`` with a
  vectorized 2×2 linear combination; diagonal and anti-diagonal matrices
  (Z/S/T/X/Y families) get in-place scale/swap fast paths with no
  temporaries.
* **two-qubit kernel** — four strided sub-tensor views combined directly,
  skipping zero matrix entries (CNOT/CZ touch only half the state).
* **controlled kernel** — controls are projected by *indexing* the state
  tensor (a view of the 2^{n-c} amplitudes with all controls = 1), then
  the single-qubit kernel runs on the view; no 2^{k+t}-dimensional matrix
  is ever built.
* **generic path** — the original moveaxis/reshape route, kept verbatim as
  the fallback for k ≥ 3 gates and as the *oracle* the kernel-equivalence
  tests compare against (``apply_generic``).

Bit-mask index tables per (num_qubits, qubit) are cached process-wide for
mask-based helpers (:func:`qubit_indices`, phase kicks).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

_ATOL = 1e-9


@lru_cache(maxsize=256)
def qubit_indices(num_qubits: int, qubit: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached basis-index tables ``(where qubit = 0, where qubit = 1)``.

    Qubit 0 is the most significant bit, so qubit ``q`` contributes
    ``2^{n-1-q}`` to the index.  The arrays are cached per
    ``(num_qubits, qubit)`` — repeated gate/measurement sweeps reuse them.
    """
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit index {qubit} out of range")
    bit = 1 << (num_qubits - 1 - qubit)
    idx = np.arange(1 << num_qubits)
    mask = (idx & bit).astype(bool)
    ones = idx[mask]
    zeros = idx[~mask]
    zeros.setflags(write=False)
    ones.setflags(write=False)
    return zeros, ones


@lru_cache(maxsize=256)
def control_mask(num_qubits: int, controls: Tuple[int, ...]) -> np.ndarray:
    """Cached boolean mask of basis states with all ``controls`` bits = 1."""
    idx = np.arange(1 << num_qubits)
    mask = np.ones(1 << num_qubits, dtype=bool)
    for c in controls:
        if not 0 <= c < num_qubits:
            raise ValueError(f"qubit index {c} out of range")
        mask &= (idx & (1 << (num_qubits - 1 - c))) != 0
    mask.setflags(write=False)
    return mask


class Statevector:
    """An n-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int, state: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits
        if state is None:
            self.data = np.zeros(self.dim, dtype=np.complex128)
            self.data[0] = 1.0
        else:
            state = np.asarray(state, dtype=np.complex128)
            if state.shape != (self.dim,):
                raise ValueError(
                    f"state must have shape ({self.dim},), got {state.shape}"
                )
            norm = np.linalg.norm(state)
            if abs(norm - 1.0) > 1e-6:
                raise ValueError(f"state is not normalized (|ψ| = {norm})")
            self.data = state.copy()

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------

    def _check_gate(self, matrix: np.ndarray, qubits: List[int]) -> None:
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubit indices in {qubits}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range")

    def apply(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a k-qubit unitary to the given qubit indices (in order).

        Dispatches to the dedicated 1- and 2-qubit kernels; larger gates
        take the generic moveaxis path (:meth:`apply_generic`).
        """
        qubits = list(qubits)
        matrix = np.asarray(matrix, dtype=np.complex128)
        self._check_gate(matrix, qubits)
        k = len(qubits)
        if k == 1:
            self._kernel_1q(matrix, qubits[0])
        elif k == 2:
            self._kernel_2q(matrix, qubits[0], qubits[1])
        else:
            self._apply_moveaxis(matrix, qubits)
        return self

    def apply_generic(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "Statevector":
        """The original moveaxis/reshape gate path, for any k.

        Kept as the reference implementation: the fast kernels are tested
        for equivalence against this, and it handles every gate size.
        """
        qubits = list(qubits)
        matrix = np.asarray(matrix, dtype=np.complex128)
        self._check_gate(matrix, qubits)
        self._apply_moveaxis(matrix, qubits)
        return self

    def _apply_moveaxis(self, matrix: np.ndarray, qubits: List[int]) -> None:
        k = len(qubits)
        tensor = self.data.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, qubits, range(k))
        shaped = tensor.reshape(1 << k, -1)
        shaped = matrix @ shaped
        tensor = shaped.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, range(k), qubits)
        self.data = np.ascontiguousarray(tensor.reshape(self.dim))

    # -- fast kernels ---------------------------------------------------

    def _halves(self, qubit: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the amplitudes with ``qubit`` = 0 / 1 (no copy)."""
        left = 1 << qubit
        right = 1 << (self.num_qubits - 1 - qubit)
        view = self.data.reshape(left, 2, right)
        return view[:, 0, :], view[:, 1, :]

    def _kernel_1q(self, matrix: np.ndarray, qubit: int) -> None:
        a0, a1 = self._halves(qubit)
        self._combine_2x2(matrix, a0, a1)

    @staticmethod
    def _combine_2x2(matrix: np.ndarray, a0: np.ndarray, a1: np.ndarray) -> None:
        """In-place ``(a0, a1) <- M (a0, a1)`` on two same-shape views."""
        m00, m01 = matrix[0, 0], matrix[0, 1]
        m10, m11 = matrix[1, 0], matrix[1, 1]
        if m01 == 0 and m10 == 0:
            # Diagonal (Z, S, T, phase): pure in-place scaling.
            if m00 != 1:
                a0 *= m00
            if m11 != 1:
                a1 *= m11
            return
        if m00 == 0 and m11 == 0:
            # Anti-diagonal (X, Y): scaled swap with one temporary.
            tmp = a0.copy()
            np.multiply(a1, m01, out=a0)
            np.multiply(tmp, m10, out=a1)
            return
        if m01 == m00 and m10 == m00 and m11 == -m00:
            # Hadamard structure c·[[1,1],[1,-1]]: one temporary and
            # in-place add/scale instead of four scaled products.
            tmp = a0 - a1
            np.add(a0, a1, out=a0)
            a0 *= m00
            np.multiply(tmp, m00, out=a1)
            return
        t0 = m00 * a0
        t0 += m01 * a1
        t1 = m10 * a0
        t1 += m11 * a1
        a0[:] = t0
        a1[:] = t1

    def _kernel_2q(self, matrix: np.ndarray, q0: int, q1: int) -> None:
        """Two-qubit gate via four strided sub-tensor views.

        ``q0`` is the most significant bit of the 2-bit gate index, per
        the :meth:`apply` qubit-ordering convention.
        """
        n = self.num_qubits
        tensor = self.data.reshape((2,) * n)
        subs = []
        for b0 in (0, 1):
            for b1 in (0, 1):
                # Length-1 slices (not ints) keep every axis, so the subs
                # stay writable views even when the gate covers all qubits.
                idx: List[object] = [slice(None)] * n
                idx[q0] = slice(b0, b0 + 1)
                idx[q1] = slice(b1, b1 + 1)
                subs.append(tensor[tuple(idx)])
        # subs[j] is the block with gate-basis index j; new_j = Σ m[j,c]·sub_c.
        outs: List[Optional[np.ndarray]] = [None] * 4
        for r in range(4):
            acc: Optional[np.ndarray] = None
            for c in range(4):
                m = matrix[r, c]
                if m == 0:
                    continue
                term = subs[c] if m == 1 else m * subs[c]
                if acc is None:
                    acc = term.copy() if term is subs[c] else term
                else:
                    acc += term
            outs[r] = acc
        for r in range(4):
            subs[r][...] = outs[r] if outs[r] is not None else 0

    def apply_controlled(
        self,
        matrix: np.ndarray,
        controls: Sequence[int],
        targets: Sequence[int],
    ) -> "Statevector":
        """Apply ``matrix`` to ``targets`` conditioned on all controls = 1.

        Single-target gates never materialize the ``2^{k+t}``-dimensional
        controlled matrix: the controls are projected by indexing the
        state tensor and the 2×2 kernel runs on the resulting view.
        """
        controls = list(controls)
        targets = list(targets)
        k = len(controls)
        t = len(targets)
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (1 << t, 1 << t):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {t} qubits"
            )
        all_qubits = controls + targets
        if len(set(all_qubits)) != k + t:
            raise ValueError(f"duplicate qubit indices in {all_qubits}")
        for q in all_qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range")
        if t == 1 and k >= 1:
            n = self.num_qubits
            tensor = self.data.reshape((2,) * n)
            # Length-1 slices keep all axes so the projections below stay
            # writable views whatever the control/target positions are.
            idx: List[object] = [slice(None)] * n
            for c in controls:
                idx[c] = slice(1, 2)
            sub = tensor[tuple(idx)]  # view: all controls projected to 1
            axis = targets[0]
            sel0: List[object] = [slice(None)] * n
            sel1: List[object] = [slice(None)] * n
            sel0[axis] = slice(0, 1)
            sel1[axis] = slice(1, 2)
            self._combine_2x2(matrix, sub[tuple(sel0)], sub[tuple(sel1)])
            return self
        # Fallback: embed into the full controlled unitary (small t only).
        full = np.eye(1 << (k + t), dtype=np.complex128)
        block = 1 << t
        full[-block:, -block:] = matrix
        return self.apply(full, all_qubits)

    def apply_diagonal(self, phases: np.ndarray) -> "Statevector":
        """Multiply amplitudes elementwise (a diagonal unitary)."""
        phases = np.asarray(phases, dtype=np.complex128)
        if phases.shape != (self.dim,):
            raise ValueError("diagonal must cover the full state")
        if not np.allclose(np.abs(phases), 1.0, atol=1e-8):
            raise ValueError("diagonal entries must have unit modulus")
        self.data *= phases
        return self

    def apply_phase(self, qubit: int, phase: complex) -> "Statevector":
        """Multiply the ``qubit = 1`` amplitudes by a unit-modulus phase."""
        if abs(abs(phase) - 1.0) > 1e-8:
            raise ValueError("phase must have unit modulus")
        _, a1 = self._halves(qubit)
        a1 *= phase
        return self

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def probability_of(self, basis_state: int) -> float:
        return float(abs(self.data[basis_state]) ** 2)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring the given qubits."""
        qubits = list(qubits)
        tensor = self.probabilities().reshape([2] * self.num_qubits)
        keep = qubits
        drop = [q for q in range(self.num_qubits) if q not in keep]
        marg = tensor.transpose(keep + drop).reshape(
            1 << len(keep), -1
        ).sum(axis=1)
        return marg

    def sample(self, rng: np.random.Generator, shots: int = 1) -> np.ndarray:
        """Sample basis-state indices from the full distribution."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        return rng.choice(self.dim, size=shots, p=probs)

    def measure(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

    def inner(self, other: "Statevector") -> complex:
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(self.inner(other)) ** 2)

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data)

    def is_normalized(self) -> bool:
        return bool(abs(np.linalg.norm(self.data) - 1.0) < 1e-6)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """|index> on the given number of qubits."""
    sv = Statevector(num_qubits)
    if index:
        sv.data[0] = 0.0
        sv.data[index] = 1.0
    return sv


def uniform_superposition(num_qubits: int) -> Statevector:
    """H^{⊗n}|0...0> without applying gates one by one."""
    sv = Statevector(num_qubits)
    sv.data[:] = 1.0 / np.sqrt(sv.dim)
    return sv
