"""Exact distributed quantum states: Lemma 7 and Theorem 17, literally.

Everywhere else in this repository the quantum CONGEST protocols are
*emulated* (Level S) — metered classical processes following the exact
amplitude laws.  This module is the Level-E counterpart for the heart of
the paper: it simulates the actual joint quantum state of a small network,
with every node owning a q-qubit register inside one global statevector,
and executes the paper's circuits on it:

* :func:`share_register` — Lemma 7's forward map
  Σᵢ αᵢ|i⟩_leader ⊗ |0⟩^{rest}  →  Σᵢ αᵢ|i⟩^{⊗n},
  implemented exactly as the proof says: transversal CNOTs from parent to
  child registers, one BFS-tree layer at a time.  (No cloning is involved
  — the result is a GHZ-like entangled state, not n independent copies.)
* :func:`unshare_register` — the reverse ("run the same algorithm in
  reverse"), returning the state to the leader.
* :func:`apply_local_phase_oracle` — each node applies its private phase
  |i⟩_v → (−1)^{x^{(v)}_i}|i⟩_v, so the shared state picks up the product
  phase (−1)^{⊕_v x^{(v)}_i}: the distributed query of Theorem 8 for the
  XOR semigroup, with *zero communication*.
* :func:`distributed_deutsch_jozsa_exact` — Theorem 17 end to end:
  H^{⊗q} at the leader, share, local phases, unshare, H^{⊗q}, measure.
  Deterministically correct, verified against the promise.

Memory is the real n·q-qubit Hilbert space (2^{nq} amplitudes), so this
is for small networks — exactly its purpose: the ground truth the scaled
emulation is checked against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.algorithms.bfs import BFSResult
from ..congest.network import Network
from . import gates
from .statevector import Statevector


@dataclass
class DistributedRegisters:
    """An n-node network state where node v owns qubits [v·q, (v+1)·q)."""

    num_nodes: int
    qubits_per_node: int
    state: Statevector

    @staticmethod
    def all_zero(num_nodes: int, qubits_per_node: int) -> "DistributedRegisters":
        total = num_nodes * qubits_per_node
        if total > 22:
            raise ValueError(
                f"{num_nodes} nodes × {qubits_per_node} qubits = {total} "
                "qubits exceeds the exact-simulation budget (22)"
            )
        return DistributedRegisters(
            num_nodes=num_nodes,
            qubits_per_node=qubits_per_node,
            state=Statevector(total),
        )

    def node_qubits(self, v: int) -> List[int]:
        q = self.qubits_per_node
        return list(range(v * q, (v + 1) * q))

    def apply_on_node(self, v: int, matrix: np.ndarray) -> None:
        self.state.apply(matrix, self.node_qubits(v))

    def node_marginal(self, v: int) -> np.ndarray:
        return self.state.marginal_probabilities(self.node_qubits(v))


def load_leader_state(
    registers: DistributedRegisters, leader: int, amplitudes: Sequence[complex]
) -> None:
    """Initialize the leader's register to Σᵢ αᵢ|i⟩ (others stay |0⟩)."""
    q = registers.qubits_per_node
    amplitudes = np.asarray(amplitudes, dtype=np.complex128)
    if amplitudes.shape != (1 << q,):
        raise ValueError(f"need {1 << q} amplitudes for a {q}-qubit register")
    norm = np.linalg.norm(amplitudes)
    if abs(norm - 1.0) > 1e-8:
        raise ValueError("leader state must be normalized")
    total = registers.state.num_qubits
    full = np.zeros(1 << total, dtype=np.complex128)
    shift = total - (leader + 1) * q
    for i, amp in enumerate(amplitudes):
        full[i << shift] = amp
    registers.state.data = full


def _copy_register(
    registers: DistributedRegisters, src: int, dst: int
) -> None:
    """Transversal CNOTs: |i⟩_src |j⟩_dst → |i⟩_src |j ⊕ i⟩_dst."""
    for offset in range(registers.qubits_per_node):
        control = registers.node_qubits(src)[offset]
        target = registers.node_qubits(dst)[offset]
        registers.state.apply(gates.CNOT, [control, target])


def _tree_layers(tree: BFSResult) -> List[List[Tuple[int, int]]]:
    """Tree edges grouped by depth of the parent, shallow first."""
    by_depth: Dict[int, List[Tuple[int, int]]] = {}
    for v, parent in tree.parent.items():
        if parent is None:
            continue
        by_depth.setdefault(tree.dist[parent], []).append((parent, v))
    return [by_depth[d] for d in sorted(by_depth)]


def share_register(
    registers: DistributedRegisters, tree: BFSResult
) -> int:
    """Lemma 7 forward: spread the leader's register to every node.

    Returns the number of CNOT layers applied (= tree depth), which is
    the round count for q ≤ log n; the pipelined chunked schedule for
    larger q is measured by :mod:`repro.core.state_transfer`.
    """
    layers = _tree_layers(tree)
    for layer in layers:
        for parent, child in layer:
            _copy_register(registers, parent, child)
    return len(layers)


def unshare_register(
    registers: DistributedRegisters, tree: BFSResult
) -> int:
    """Lemma 7 reverse: uncompute all copies back into the leader."""
    layers = _tree_layers(tree)
    for layer in reversed(layers):
        for parent, child in layer:
            _copy_register(registers, parent, child)  # CNOT is self-inverse
    return len(layers)


def is_shared_state(
    registers: DistributedRegisters, amplitudes: Sequence[complex]
) -> bool:
    """Does the global state equal Σᵢ αᵢ|i⟩^{⊗n}?"""
    q = registers.qubits_per_node
    n = registers.num_nodes
    expected = np.zeros(registers.state.dim, dtype=np.complex128)
    for i, amp in enumerate(np.asarray(amplitudes, dtype=np.complex128)):
        index = 0
        for _ in range(n):
            index = (index << q) | i
        expected[index] = amp
    return bool(np.allclose(registers.state.data, expected, atol=1e-9))


def _register_view(
    registers: DistributedRegisters, node: int
) -> np.ndarray:
    """The statevector reshaped to ``(left, 2^q, right)`` around node's register.

    Node v's qubits are the contiguous block ``[v·q, (v+1)·q)`` and qubit 0
    is the most significant index bit, so the register's basis index is a
    middle axis of a plain reshape — no ``moveaxis``, no copy.  Diagonal
    and mean-reflection updates then broadcast along that axis.
    """
    q = registers.qubits_per_node
    total = registers.state.num_qubits
    left = 1 << (node * q)
    right = 1 << (total - (node + 1) * q)
    return registers.state.data.reshape(left, 1 << q, right)


def apply_local_phase_oracle(
    registers: DistributedRegisters, node: int, bits: Sequence[int]
) -> None:
    """Node applies |i⟩ → (−1)^{bits[i]}|i⟩ on its own register, locally.

    Column-major fast path (PR 7): the phase is diagonal in the node's
    register index, so it is a broadcast multiply on the reshaped
    statevector — O(2^{nq}) scalar multiplies instead of a 2^q × 2^q
    matrix product through the generic gate path.  Each amplitude is
    multiplied by exactly the same ±1 the dense diagonal would have
    contributed, so the result is bit-identical to
    :func:`apply_local_phase_oracle_dense` (the kernel-equivalence tests
    pin this).
    """
    q = registers.qubits_per_node
    if len(bits) != (1 << q):
        raise ValueError(f"need {1 << q} oracle bits, got {len(bits)}")
    diag = np.array([(-1.0) ** b for b in bits], dtype=np.complex128)
    view = _register_view(registers, node)
    view *= diag[None, :, None]


def apply_local_phase_oracle_dense(
    registers: DistributedRegisters, node: int, bits: Sequence[int]
) -> None:
    """Reference oracle: the same local phase via an explicit diagonal
    matrix through the generic gate path.  Kept as the ground truth the
    vectorized :func:`apply_local_phase_oracle` is tested against."""
    q = registers.qubits_per_node
    if len(bits) != (1 << q):
        raise ValueError(f"need {1 << q} oracle bits, got {len(bits)}")
    diag = np.array([(-1.0) ** b for b in bits], dtype=np.complex128)
    registers.apply_on_node(node, np.diag(diag))


@dataclass
class ExactGroverOutcome:
    measured_index: int
    marked: bool
    success_probability: float
    iterations: int
    share_layers_per_query: int


def distributed_grover_exact(
    network: Network,
    tree: BFSResult,
    inputs: Dict[int, List[int]],
    iterations: int,
    rng: Optional[np.random.Generator] = None,
) -> ExactGroverOutcome:
    """Grover search over the network's XOR-aggregated input, exactly.

    The target predicate is f(j) = ⊕_v x^{(v)}_j: because the phase
    (−1)^{f(j)} factorizes into Π_v (−1)^{x^{(v)}_j}, each oracle call of
    Grover's algorithm is implemented *exactly* as Theorem 8 prescribes —
    share the index register (Lemma 7), let every node apply its local
    phase, unshare — with the diffusion applied at the leader.  This is
    the smallest end-to-end instance of the paper's framework that is
    simulable as a genuine quantum computation.

    Returns the measured index and the exact success probability, which
    tests compare against the sin²((2j+1)θ) law.
    """
    k = len(next(iter(inputs.values())))
    if k < 2 or k & (k - 1):
        raise ValueError("k must be a power of two >= 2 for the exact circuit")
    q = k.bit_length() - 1
    leader = tree.root
    rng = rng if rng is not None else np.random.default_rng()

    aggregated = [0] * k
    for vec in inputs.values():
        if len(vec) != k:
            raise ValueError("all nodes must hold length-k inputs")
        aggregated = [a ^ b for a, b in zip(aggregated, vec)]
    marked = {j for j, bit in enumerate(aggregated) if bit}

    registers = DistributedRegisters.all_zero(network.n, q)
    uniform = np.full(1 << q, 1.0 / math.sqrt(1 << q), dtype=np.complex128)
    load_leader_state(registers, leader, uniform)
    layers = 0
    leader_qubits = registers.node_qubits(leader)

    for _ in range(iterations):
        # Oracle: Lemma 7 share, local phases, Lemma 7 unshare.
        layers = share_register(registers, tree)
        for v in network.nodes():
            apply_local_phase_oracle(registers, v, inputs[v])
        unshare_register(registers, tree)
        # Diffusion on the leader's register (local computation).
        _leader_diffusion(registers, leader_qubits)

    marginal = registers.node_marginal(leader)
    success = float(sum(marginal[j] for j in marked))
    outcome = int(rng.choice(1 << q, p=marginal / marginal.sum()))
    return ExactGroverOutcome(
        measured_index=outcome,
        marked=outcome in marked,
        success_probability=success,
        iterations=iterations,
        share_layers_per_query=layers,
    )


def _leader_diffusion(
    registers: DistributedRegisters, leader_qubits: List[int]
) -> None:
    """2|s><s| − I on the leader register, leaving other registers alone.

    Matrix-free mean reflection (PR 7): for each fixed setting of the
    other registers, every leader amplitude maps to ``2·mean − a`` —
    one reduction and one broadcast over the reshaped statevector,
    instead of a dense 2^q × 2^q matrix through the generic gate path.
    Numerically this changes only the summation order inside the mean
    (the tests bound the difference from
    :func:`_leader_diffusion_dense` at ~1e-12).
    """
    q = len(leader_qubits)
    lo = leader_qubits[0]
    if leader_qubits != list(range(lo, lo + q)):  # pragma: no cover
        _leader_diffusion_dense(registers, leader_qubits)
        return
    view = registers.state.data.reshape(1 << lo, 1 << q, -1)
    mean = view.mean(axis=1, keepdims=True)
    view *= -1.0
    view += 2.0 * mean


def _leader_diffusion_dense(
    registers: DistributedRegisters, leader_qubits: List[int]
) -> None:
    """Reference oracle: the same diffusion as an explicit dense matrix."""
    q = len(leader_qubits)
    dim = 1 << q
    diffusion = 2.0 / dim * np.ones((dim, dim), dtype=np.complex128) - np.eye(dim)
    registers.state.apply(diffusion, leader_qubits)


@dataclass
class ExactDJOutcome:
    constant: bool
    leader_zero_probability: float
    share_layers: int
    total_qubits: int


def distributed_deutsch_jozsa_exact(
    network: Network,
    tree: BFSResult,
    inputs: Dict[int, List[int]],
) -> ExactDJOutcome:
    """Theorem 17 as a genuine quantum circuit over the whole network.

    Args:
        network: a small network (n·log₂k ≤ 22 qubits).
        tree: BFS tree rooted at the designated leader.
        inputs: per-node x^{(v)} ∈ {0,1}^k with k a power of two and the
            XOR promise (constant or balanced) holding.

    Returns:
        the deterministic classification plus the exact probability of
        the leader measuring |0...0⟩ (1.0 for constant, 0.0 for balanced).
    """
    k = len(next(iter(inputs.values())))
    if k < 2 or k & (k - 1):
        raise ValueError("k must be a power of two >= 2 for the exact circuit")
    q = k.bit_length() - 1
    leader = tree.root

    registers = DistributedRegisters.all_zero(network.n, q)
    uniform = np.full(1 << q, 1.0 / math.sqrt(1 << q), dtype=np.complex128)
    load_leader_state(registers, leader, uniform)

    layers = share_register(registers, tree)
    if not is_shared_state(registers, uniform):
        raise AssertionError("Lemma 7 sharing produced the wrong state")

    for v in network.nodes():
        apply_local_phase_oracle(registers, v, inputs[v])

    unshare_register(registers, tree)

    # Final H^{⊗q} on the leader, then read the |0⟩ probability.
    for qubit in registers.node_qubits(leader):
        registers.state.apply(gates.H, [qubit])
    marginal = registers.node_marginal(leader)
    p_zero = float(marginal[0])
    return ExactDJOutcome(
        constant=p_zero > 0.5,
        leader_zero_probability=p_zero,
        share_layers=layers,
        total_qubits=registers.state.num_qubits,
    )
