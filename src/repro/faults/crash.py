"""Crash-stop and crash-recovery node faults with deterministic schedules.

A :class:`CrashSchedule` pins down, before the run starts, exactly which
nodes are down in which rounds — a crashed node neither executes its
program nor receives messages (its in-flight inbox is lost), and a
recovering node resumes with its program state intact (crash-*recovery*,
i.e. a reboot with stable storage; the outage looks to the protocol like
a long per-node message blackout).

Schedules are plain data, so tests and experiments can write them by
hand; :func:`random_crash_schedule` draws one deterministically from a
seed for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CrashSpec", "CrashSchedule", "random_crash_schedule"]


@dataclass(frozen=True)
class CrashSpec:
    """One node outage.

    Attributes:
        node: the affected node id.
        crash_round: first round (1-based) in which the node is down.
        recover_round: first round in which the node is back up, or
            ``None`` for crash-stop (down forever).
    """

    node: int
    crash_round: int
    recover_round: Optional[int] = None

    def __post_init__(self):
        if self.crash_round < 1:
            raise ValueError(
                f"crash_round must be >= 1, got {self.crash_round}"
            )
        if self.recover_round is not None and (
            self.recover_round <= self.crash_round
        ):
            raise ValueError(
                f"recover_round {self.recover_round} must come after "
                f"crash_round {self.crash_round}"
            )

    def down_in(self, round_no: int) -> bool:
        """Whether this outage covers ``round_no``."""
        if round_no < self.crash_round:
            return False
        return self.recover_round is None or round_no < self.recover_round


class CrashSchedule:
    """A set of node outages, queried per (node, round) by the engine."""

    def __init__(self, specs: Iterable[CrashSpec]):
        self.specs: List[CrashSpec] = list(specs)
        self._by_node: Dict[int, List[CrashSpec]] = {}
        for spec in self.specs:
            self._by_node.setdefault(spec.node, []).append(spec)

    def is_down(self, node: int, round_no: int) -> bool:
        """Whether ``node`` is crashed during ``round_no``."""
        return any(
            spec.down_in(round_no) for spec in self._by_node.get(node, [])
        )

    def is_forever_down(self, node: int, round_no: int) -> bool:
        """Whether ``node`` has crash-stopped at or before ``round_no``."""
        return any(
            spec.recover_round is None and spec.crash_round <= round_no
            for spec in self._by_node.get(node, [])
        )

    def transitions(self, round_no: int) -> List[Tuple[int, str]]:
        """The ``(node, "crash"|"recover")`` events taking effect this round."""
        events: List[Tuple[int, str]] = []
        for spec in self.specs:
            if spec.crash_round == round_no:
                events.append((spec.node, "crash"))
            if spec.recover_round == round_no:
                events.append((spec.node, "recover"))
        return events

    def affected_nodes(self) -> List[int]:
        """Sorted ids of every node with at least one outage."""
        return sorted(self._by_node)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CrashSchedule({self.specs!r})"


def random_crash_schedule(
    n: int,
    crash_fraction: float,
    horizon: int,
    seed: Optional[int] = None,
    outage_rounds: Optional[int] = None,
    protect: Sequence[int] = (),
) -> CrashSchedule:
    """Draw a deterministic schedule crashing a fraction of the nodes.

    Args:
        n: network size; candidate nodes are ``0..n-1``.
        crash_fraction: fraction of (unprotected) nodes to crash.
        horizon: crash rounds are drawn uniformly from ``[1, horizon]``.
        seed: RNG seed; the same seed always yields the same schedule.
        outage_rounds: if given, every crash recovers after this many
            rounds (crash-recovery); otherwise crashes are crash-stop.
        protect: nodes that must never crash (e.g. the BFS root or the
            elected leader).
    """
    if not 0.0 <= crash_fraction <= 1.0:
        raise ValueError(
            f"crash_fraction must be in [0, 1], got {crash_fraction}"
        )
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    rng = np.random.default_rng(seed)
    candidates = [v for v in range(n) if v not in set(protect)]
    count = int(round(crash_fraction * len(candidates)))
    chosen = rng.choice(len(candidates), size=count, replace=False)
    specs = []
    for idx in sorted(int(i) for i in chosen):
        crash_round = int(rng.integers(1, horizon + 1))
        recover = (
            crash_round + outage_rounds if outage_rounds is not None else None
        )
        specs.append(CrashSpec(candidates[idx], crash_round, recover))
    return CrashSchedule(specs)
