"""Fidelity decay for Lemma 7 state transfer, re-amplified by boosting.

A lossy network degrades the paper's state-transfer primitive
(:mod:`repro.core.state_transfer`): every chunk-hop of the streamed
register is an opportunity for the carrier to be lost, and quantum
registers cannot be retransmitted from a local copy (no cloning), so a
single lost chunk scraps the whole attempt.  The end-to-end success
probability of one transfer therefore decays geometrically in the number
of chunk deliveries.

The paper's own remedy is already in the codebase: the leader repeats
the protocol and combines outcomes (:mod:`repro.core.boosting`).  This
module closes the loop quantitatively — given a per-delivery loss
probability it computes the transfer fidelity, asks
:func:`repro.core.boosting.repetitions_for` how many repetitions restore
a target confidence, and reports the total round bill, which is the
"extra rounds to keep the output distribution intact" number E19 sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..congest.algorithms.bfs import BFSResult
from ..congest.network import Network
from ..core.boosting import repetitions_for
from ..core.state_transfer import distribute_register

__all__ = [
    "FidelityModel",
    "ReamplifiedTransfer",
    "reamplified_transfer",
]


@dataclass(frozen=True)
class FidelityModel:
    """Per-delivery loss model for streamed quantum registers.

    Attributes:
        loss_p: probability that any single chunk delivery (one chunk
            crossing one tree edge) is lost.
    """

    loss_p: float

    def __post_init__(self):
        if not 0.0 <= self.loss_p < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {self.loss_p}"
            )

    def deliveries(self, network: Network, num_chunks: int) -> int:
        """Chunk deliveries in one full transfer: every non-root node
        receives every chunk once over its parent edge."""
        return num_chunks * max(network.n - 1, 0)

    def transfer_fidelity(self, network: Network, num_chunks: int) -> float:
        """Probability that one whole transfer survives undamaged."""
        return (1.0 - self.loss_p) ** self.deliveries(network, num_chunks)


@dataclass
class ReamplifiedTransfer:
    """Round bill for a state transfer re-amplified to target confidence."""

    base_rounds: int
    num_chunks: int
    fidelity: float
    repetitions: int
    total_rounds: int
    achieved_failure: float


def reamplified_transfer(
    network: Network,
    tree: BFSResult,
    register_value: int,
    q_bits: int,
    loss_p: float,
    delta: float = 0.01,
    pipelined: bool = True,
    seed: Optional[int] = None,
) -> ReamplifiedTransfer:
    """Measure one Lemma 7 transfer, then price its lossy re-amplification.

    Runs :func:`~repro.core.state_transfer.distribute_register` once on
    the (faultless) engine for the measured per-attempt round count,
    computes the attempt fidelity under ``loss_p`` per chunk delivery,
    and uses the boosting machinery to size the repetition count that
    brings the failure probability back under ``delta``.

    Returns:
        A :class:`ReamplifiedTransfer` with the per-attempt rounds, the
        attempt fidelity, the repetitions the leader must schedule, and
        the total (repetitions × per-attempt) round bill.
    """
    base = distribute_register(
        network, tree, register_value, q_bits, pipelined=pipelined, seed=seed
    )
    model = FidelityModel(loss_p)
    fidelity = model.transfer_fidelity(network, base.chunks)
    if fidelity <= 0.0:
        raise ValueError(
            "transfer fidelity underflowed to zero; no repetition count "
            "can re-amplify it"
        )
    if fidelity >= 1.0:
        repetitions = 1
        achieved = 0.0
    else:
        repetitions = repetitions_for(delta, base_failure=1.0 - fidelity)
        achieved = math.exp(repetitions * math.log(1.0 - fidelity))
    return ReamplifiedTransfer(
        base_rounds=base.rounds,
        num_chunks=base.chunks,
        fidelity=fidelity,
        repetitions=repetitions,
        total_rounds=repetitions * base.rounds,
        achieved_failure=achieved,
    )
