"""Pluggable channel fault models for the CONGEST engine.

Each model decides, per in-flight message, whether the message is
delivered unchanged, dropped, corrupted (payload altered *within the
declared field domains*, so the bandwidth charge never changes), or
delayed by a bounded number of rounds (which also reorders it past later
sends on the same edge).

Models are deterministic once seeded: construct with an explicit
``seed``, or let :class:`repro.faults.FaultyEngine` bind one derived from
its own fault seed.  The same seed always yields the identical fault
schedule, so lossy runs are exactly reproducible.

The verdict vocabulary (:data:`DELIVER` / :data:`DROP` / :data:`CORRUPT`
/ :data:`DELAY`) is shared with :mod:`repro.congest.tracing` so fault
events appear as first-class :class:`~repro.congest.tracing.TraceEvent`s.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..congest.encoding import Field
from ..congest.messages import Message
from ..congest.tracing import CORRUPT, DELAY, DELIVER, DROP

__all__ = [
    "DELIVER",
    "DROP",
    "CORRUPT",
    "DELAY",
    "ChannelFaultModel",
    "NoFaults",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "BitCorruption",
    "BoundedDelay",
    "CompositeFaults",
]


class ChannelFaultModel:
    """Base channel model: a perfect, lossless, in-order channel.

    Subclasses override :meth:`apply` (and, for models that hold messages
    back, :meth:`release` / :meth:`pending`).  The engine calls
    :meth:`bind` once before the run with a :class:`numpy.random.
    SeedSequence`; a model constructed with an explicit ``seed`` keeps it,
    so standalone use is deterministic too.
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.rng: Optional[np.random.Generator] = None

    def bind(self, seed_seq: np.random.SeedSequence) -> None:
        """Seed the model's RNG (own ``seed`` wins over the engine's).

        Binding also clears any per-run mutable state via :meth:`_reset`,
        so a model instance reused across runs (or re-bound with the same
        seed) honours the module contract: same seed ⇒ identical fault
        schedule.  Before this reset existed, a reused
        :class:`GilbertElliottLoss` carried its per-edge burst states —
        and a reused :class:`BoundedDelay` its *undelivered held
        messages* — from the previous run into the next one.
        """
        self.rng = np.random.default_rng(self._resolve_seed(seed_seq))
        self._reset()

    def _resolve_seed(
        self, seed_seq: np.random.SeedSequence
    ) -> np.random.SeedSequence:
        """The model's own ``seed`` wins over the engine-provided one."""
        if self.seed is not None:
            return np.random.SeedSequence(self.seed)
        return seed_seq

    def _reset(self) -> None:
        """Clear per-run mutable state (burst chains, held messages).

        Called by :meth:`bind`; the base channel holds none.  Subclasses
        with cross-message state MUST override this, or reusing a model
        instance leaks one run's state into the next.
        """

    def _require_rng(self) -> np.random.Generator:
        if self.rng is None:
            self.bind(np.random.SeedSequence(self.seed))
        return self.rng

    def on_round(self, round_no: int) -> None:
        """Hook called once at the top of every round."""

    def apply(
        self, msg: Message, round_no: int
    ) -> Tuple[str, Optional[Message]]:
        """Judge one in-flight message.

        Returns:
            ``(verdict, message)`` where verdict is one of
            :data:`DELIVER` / :data:`DROP` / :data:`CORRUPT` /
            :data:`DELAY` and message is the (possibly replaced) message
            to deliver, or ``None`` for drops and delays.
        """
        return DELIVER, msg

    def release(self, round_no: int) -> List[Message]:
        """Messages previously delayed that come due this round."""
        return []

    def pending(self) -> bool:
        """Whether the model still holds undelivered delayed messages."""
        return False

    def describe(self) -> str:
        """One-line human-readable summary for tables and CLI output."""
        return type(self).__name__


class NoFaults(ChannelFaultModel):
    """The identity channel; runs are byte-for-byte the plain engine."""

    def describe(self) -> str:
        return "no faults"


class BernoulliLoss(ChannelFaultModel):
    """Drop each message independently with probability ``p``."""

    def __init__(self, p: float, seed: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        super().__init__(seed)
        self.p = p

    def apply(self, msg, round_no):
        """Drop the message with probability ``p``; deliver otherwise."""
        if self.p > 0.0 and self._require_rng().random() < self.p:
            return DROP, None
        return DELIVER, msg

    def describe(self) -> str:
        return f"bernoulli loss p={self.p:g}"


class GilbertElliottLoss(ChannelFaultModel):
    """Bursty loss: per directed edge, a two-state Gilbert–Elliott chain.

    Each directed edge is independently in a *good* or *bad* state; the
    chain steps once per message (one message per edge per round in
    CONGEST, so this is once per round per active edge) and the message
    is dropped with the state's loss rate.  Long bad-state sojourns model
    link outages rather than independent noise.
    """

    def __init__(
        self,
        p_enter_burst: float = 0.05,
        p_exit_burst: float = 0.3,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
        seed: Optional[int] = None,
    ):
        for name, value in (
            ("p_enter_burst", p_enter_burst),
            ("p_exit_burst", p_exit_burst),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        super().__init__(seed)
        self.p_enter_burst = p_enter_burst
        self.p_exit_burst = p_exit_burst
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad: Dict[Tuple[int, int], bool] = {}

    def _reset(self):
        """Every edge chain restarts in the good state on re-bind."""
        self._bad.clear()

    def apply(self, msg, round_no):
        """Step the edge's chain, then drop at the state's loss rate."""
        rng = self._require_rng()
        edge = (msg.src, msg.dst)
        bad = self._bad.get(edge, False)
        flip = self.p_exit_burst if bad else self.p_enter_burst
        if rng.random() < flip:
            bad = not bad
        self._bad[edge] = bad
        loss = self.loss_bad if bad else self.loss_good
        if loss > 0.0 and rng.random() < loss:
            return DROP, None
        return DELIVER, msg

    def describe(self) -> str:
        return (
            f"gilbert-elliott burst loss "
            f"(enter={self.p_enter_burst:g}, exit={self.p_exit_burst:g}, "
            f"bad={self.loss_bad:g})"
        )


def _corrupt_payload(payload, rng: np.random.Generator):
    """Re-randomize a payload within its declared structure.

    Every :class:`Field` is replaced by a uniformly random *different*
    value from the same domain (same bit charge); bools are flipped;
    structure, ``None`` markers, and bare values are left alone, so the
    encoded size — and therefore the bandwidth charge — is unchanged.
    """
    if isinstance(payload, Field):
        if payload.domain <= 1:
            return payload
        new = int(rng.integers(payload.domain - 1))
        if new >= payload.value:
            new += 1
        return Field(new, payload.domain)
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, tuple):
        return tuple(_corrupt_payload(item, rng) for item in payload)
    if isinstance(payload, list):
        return [_corrupt_payload(item, rng) for item in payload]
    return payload


class BitCorruption(ChannelFaultModel):
    """Corrupt each message independently with probability ``p``.

    Corruption re-randomizes the payload's ``Field`` values within their
    declared domains and flips bools, keeping the charged bit size — and
    thus the CONGEST bandwidth budget — exactly as sent.  Receivers see a
    well-formed but wrong message, which is what checksummed resilient
    protocols (:mod:`repro.faults.resilience`) must detect themselves.
    """

    def __init__(self, p: float, seed: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError(
                f"corruption probability must be in [0, 1], got {p}"
            )
        super().__init__(seed)
        self.p = p

    def apply(self, msg, round_no):
        """With probability ``p``, rewrite the payload within its domains."""
        rng = self._require_rng()
        if self.p <= 0.0 or rng.random() >= self.p:
            return DELIVER, msg
        corrupted = Message(
            src=msg.src,
            dst=msg.dst,
            payload=_corrupt_payload(msg.payload, rng),
            bits=msg.bits,
            round_sent=msg.round_sent,
        )
        return CORRUPT, corrupted

    def describe(self) -> str:
        return f"bit corruption p={self.p:g}"


class BoundedDelay(ChannelFaultModel):
    """Delay each message with probability ``p`` by 1..``max_delay`` rounds.

    A delayed message is withheld and re-injected in a later round, which
    both delays and *reorders* it relative to newer traffic on the same
    edge — the failure mode sequence-numbered protocols exist for.
    """

    def __init__(
        self, p: float, max_delay: int = 3, seed: Optional[int] = None
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"delay probability must be in [0, 1], got {p}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        super().__init__(seed)
        self.p = p
        self.max_delay = max_delay
        self._held: Dict[int, List[Message]] = {}

    def _reset(self):
        """Drop held messages on re-bind: a new run must never receive
        traffic delayed out of a *previous* run."""
        self._held.clear()

    def apply(self, msg, round_no):
        """Hold the message for a random bounded number of extra rounds."""
        rng = self._require_rng()
        if self.p <= 0.0 or rng.random() >= self.p:
            return DELIVER, msg
        due = round_no + 1 + int(rng.integers(self.max_delay))
        self._held.setdefault(due, []).append(msg)
        return DELAY, None

    def release(self, round_no):
        """Deliver messages whose delay expires this round."""
        return self._held.pop(round_no, [])

    def pending(self):
        """True while any delayed message is still held."""
        return bool(self._held)

    def describe(self) -> str:
        return f"bounded delay p={self.p:g}, <= {self.max_delay} rounds"


class CompositeFaults(ChannelFaultModel):
    """Chain several fault models; the first non-deliver verdict wins.

    A :data:`CORRUPT` verdict replaces the message and continues down the
    chain (a corrupted message can still be dropped or delayed);
    :data:`DROP` and :data:`DELAY` stop the chain.  Released (previously
    delayed) messages are delivered as-is.
    """

    def __init__(
        self,
        models: List[ChannelFaultModel],
        seed: Optional[int] = None,
    ):
        if not models:
            raise ValueError("CompositeFaults needs at least one model")
        super().__init__(seed)
        self.models = list(models)

    def bind(self, seed_seq):
        """Give every chained model an independent child seed.

        Children are spawned from a *fresh copy* of the resolved seed
        sequence (same entropy and spawn key, spawn counter at zero), so
        re-binding with the same seed hands every chained model the
        identical child seed it got the first time —
        ``SeedSequence.spawn`` otherwise advances a counter and a second
        ``bind`` would silently re-seed the whole chain differently.
        Each child's own ``bind`` clears its per-run state, so the reset
        guarantee composes through the chain.
        """
        resolved = self._resolve_seed(seed_seq)
        self.rng = np.random.default_rng(resolved)
        self._reset()
        children = np.random.SeedSequence(
            entropy=resolved.entropy, spawn_key=resolved.spawn_key
        ).spawn(len(self.models))
        for model, child in zip(self.models, children):
            model.bind(child)

    def on_round(self, round_no):
        """Forward the round tick to every chained model."""
        for model in self.models:
            model.on_round(round_no)

    def apply(self, msg, round_no):
        """Run the message through the chain until a terminal verdict."""
        self._require_rng()
        verdict = DELIVER
        for model in self.models:
            step, replacement = model.apply(msg, round_no)
            if step == DELIVER:
                continue
            if step == CORRUPT:
                verdict = CORRUPT
                msg = replacement
                continue
            return step, None
        return verdict, msg

    def release(self, round_no):
        """Collect every chained model's due messages."""
        out: List[Message] = []
        for model in self.models:
            out.extend(model.release(round_no))
        return out

    def pending(self):
        """True while any chained model holds messages."""
        return any(model.pending() for model in self.models)

    def describe(self) -> str:
        return " + ".join(model.describe() for model in self.models)
