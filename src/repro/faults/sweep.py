"""Loss-rate sweep behind ``python -m repro faults``.

A small front end over the resilience toolkit: pick one CONGEST
workhorse (BFS-with-echo, convergecast, or leader election) and one
channel fault model, sweep the fault probability, and tabulate the
physical rounds the reliable-link layer charges to keep the faultless
output intact at each level.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import ExperimentTable
from ..congest import topologies
from ..parallel.seeds import derive_seed
from ..congest.algorithms.aggregate import aggregate_single
from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.algorithms.leader import elect_leader
from .models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    ChannelFaultModel,
    GilbertElliottLoss,
)
from .resilience import (
    resilient_bfs,
    resilient_convergecast,
    resilient_leader,
)

__all__ = ["fault_sweep"]

#: Convergecast value domain used by the sweep.
_SWEEP_DOMAIN = 256


def _make_model(model: str, p: float) -> ChannelFaultModel:
    """Instantiate the named channel fault model at probability ``p``."""
    if model == "bernoulli":
        return BernoulliLoss(p)
    if model == "burst":
        return GilbertElliottLoss(loss_bad=max(p, 0.5), p_enter_burst=p)
    if model == "corrupt":
        return BitCorruption(p)
    if model == "delay":
        return BoundedDelay(p)
    raise ValueError(f"unknown fault model {model!r}")


def fault_sweep(
    losses: List[float],
    algorithm: str = "bfs",
    model: str = "bernoulli",
    rows: int = 4,
    cols: int = 4,
    seed: int = 0,
) -> ExperimentTable:
    """Sweep fault probability vs resilience round overhead on a grid."""
    net = topologies.grid(rows, cols)
    root = 0
    tree = bfs_with_echo(net, root, seed=seed)
    values = {v: (7 * v + 3) % _SWEEP_DOMAIN for v in net.nodes()}

    if algorithm == "bfs":
        baseline = tree.rounds
        truth = net.distances_from(root)
    elif algorithm == "convergecast":
        truth, baseline = aggregate_single(
            net, tree, values, max, _SWEEP_DOMAIN, seed=seed
        )
    elif algorithm == "leader":
        faultless = elect_leader(net, seed=seed)
        baseline = faultless.rounds
        truth = faultless.leader
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    table = ExperimentTable(
        "faults",
        f"{algorithm} on a {rows}x{cols} grid under {model} faults",
        ["fault p", "rounds", "overhead", "virtual rounds", "dropped",
         "corrupted", "delayed", "correct"],
    )
    for i, p in enumerate(losses):
        fault_model = _make_model(model, p)
        # derive_seed, not `seed * 1000 + i`: the old arithmetic made
        # (seed=0, i=1000) collide with (seed=1, i=0), so adjacent root
        # seeds shared fault streams across sweep points.
        fault_seed = derive_seed(seed, "fault_sweep", algorithm, model, i)
        if algorithm == "bfs":
            res, run = resilient_bfs(
                net, root, fault_model=fault_model,
                seed=seed, fault_seed=fault_seed,
            )
            correct = res.dist == truth
        elif algorithm == "convergecast":
            agg, run = resilient_convergecast(
                net, tree, values, max, _SWEEP_DOMAIN,
                fault_model=fault_model, seed=seed, fault_seed=fault_seed,
            )
            correct = agg == truth
        else:
            leader, run = resilient_leader(
                net, fault_model=fault_model,
                seed=seed, fault_seed=fault_seed,
            )
            correct = leader == truth
        table.add_row(
            p,
            run.rounds,
            run.overhead_vs(baseline),
            run.virtual_rounds,
            run.fault_stats.dropped,
            run.fault_stats.corrupted,
            run.fault_stats.delayed,
            correct,
        )
    table.add_note(
        f"faultless baseline: {baseline} rounds; overhead is physical "
        f"rounds over it (ack/retransmission + synchronizer tax)"
    )
    return table
