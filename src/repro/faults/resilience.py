"""Resilience toolkit: reliable links + a round synchronizer for faults.

:class:`ResilientProgram` wraps any :class:`~repro.congest.program.
NodeProgram` and makes it run correctly on a lossy, corrupting,
reordering channel.  It combines three classical mechanisms:

* **ack / retransmission** — every data frame is retransmitted on a
  timeout with exponential backoff until the neighbor acknowledges it
  (acks piggyback on whatever the node sends next);
* **sequence numbers + checksum** — frames carry a small modular
  sequence number (so delayed / reordered duplicates are recognized) and
  an 8-bit checksum (so in-domain bit corruption is detected and the
  frame discarded, to be recovered by retransmission);
* **an α-synchronizer** — each wrapped node runs its inner program in
  *virtual rounds*: it advances to virtual round ``r+1`` only once every
  neighbor has acknowledged its round-``r`` frame and it has received
  every neighbor's round-``r`` frame (an explicit empty frame when the
  inner program had nothing to say).  The inner program therefore sees
  exactly the synchronous CONGEST semantics it was written for.

The price is the round overhead the paper's lossless model hides: one
virtual round costs ≥ 2 physical rounds (frame + ack) plus retransmission
stalls, and the frame header costs :data:`HEADER_BITS` of each message's
bandwidth.  Experiment E19 measures exactly this overhead as a function
of the loss rate.

Termination uses a ``halted`` flag in every frame plus a linger phase:
a node whose inner program halted keeps acknowledging retransmissions
until its links are drained and the network has been silent towards it
for ``linger`` rounds, then leaves the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..congest.algorithms.aggregate import build_upcast_programs
from ..congest.algorithms.bfs import (
    BFSEchoProgram,
    BFSResult,
    bfs_result_from_run,
)
from ..congest.algorithms.leader import BoundedMaxIdFloodProgram
from ..congest.encoding import Field
from ..congest.engine import RunResult
from ..congest.errors import CongestError
from ..congest.messages import Inbox, Message
from ..congest.network import Network
from ..congest.program import Context, NodeProgram
from ..congest.tracing import Trace
from .crash import CrashSchedule
from .engine import FaultStats, FaultyEngine
from .models import ChannelFaultModel

__all__ = [
    "HEADER_BITS",
    "ResilientProgram",
    "ResilientRunResult",
    "run_resilient",
    "resilient_bfs",
    "resilient_convergecast",
    "resilient_leader",
]

#: Sequence numbers are taken modulo this; disambiguates the current and
#: next virtual round (and recognizes bounded-delay stragglers).
SEQ_MOD = 16
#: Checksum domain; an in-domain corruption slips through with
#: probability 1/256 per corrupted frame.
CHECKSUM_MOD = 256
#: Worst-case frame header budget in bits (sequence number, data flag,
#: halted flag, ack, checksum, empty-slot markers).  The inner program
#: sees the link bandwidth reduced by this much.
HEADER_BITS = 20


def _flatten(value: Any, acc: List[int]) -> None:
    """Serialize a payload into integers for checksumming."""
    if value is None:
        acc.append(0)
    elif isinstance(value, bool):
        acc.append(1 if value else 2)
    elif isinstance(value, Field):
        acc.extend((3, value.value % 100003, value.domain % 100003))
    elif isinstance(value, int):
        acc.extend((4, value % 100003))
    elif isinstance(value, float):
        acc.extend((5, int(value * 4096) % 100003))
    elif isinstance(value, str):
        acc.append(6)
        acc.extend(ord(c) for c in value)
    elif isinstance(value, (tuple, list)):
        acc.append(7 + len(value))
        for item in value:
            _flatten(item, acc)
    else:  # pragma: no cover - payload types are closed by encoding.py
        acc.append(9)


def frame_checksum(parts: Tuple[Any, ...]) -> int:
    """8-bit polynomial checksum over a frame's header and payload."""
    acc: List[int] = []
    _flatten(parts, acc)
    h = 0
    for token in acc:
        h = (h * 131 + token + 7) % CHECKSUM_MOD
    return h


@dataclass
class _LinkState:
    """Per-neighbor reliable-link bookkeeping."""

    out_payload: Any = None        # inner payload queued for current vr
    out_has_data: bool = False
    acked: bool = False            # neighbor acked our current-vr frame
    gave_up: bool = False          # retransmission budget exhausted
    got: bool = False              # we hold neighbor's current-vr frame
    in_has_data: bool = False
    in_payload: Any = None
    buffer: Optional[Tuple[bool, Any]] = None  # early frame for vr + 1
    last_rcvd_seq: Optional[int] = None
    owe_ack: bool = False          # a standalone ack is due
    peer_halted: bool = False
    resend_at: int = 0             # physical round of next transmission
    backoff: int = 0
    retries: int = 0


class ResilientProgram(NodeProgram):
    """Reliable-link + synchronizer wrapper around an inner node program.

    The inner program runs unmodified; it sees a
    :class:`~repro.congest.program.Context` whose ``round`` is the
    *virtual* round number and whose bandwidth is reduced by
    :data:`HEADER_BITS`.

    Args:
        inner: the node program to protect.
        timeout: physical rounds to wait for an ack before the first
            retransmission.
        max_backoff: retransmission interval cap (the timeout doubles
            after every retransmission up to this).
        max_retries: transmissions per frame before giving up on a link
            (a safety valve so one dead link cannot stall forever).
        linger: silent physical rounds a halted node waits, still
            acknowledging retransmissions, before leaving the simulation.
    """

    # Retransmission timeouts and the linger countdown advance on *silent*
    # physical rounds, so the wrapper must execute every round: active-set
    # scheduling would otherwise never fire a timeout on a lossy link.
    always_active = True

    def __init__(
        self,
        inner: NodeProgram,
        timeout: int = 2,
        max_backoff: int = 8,
        max_retries: int = 25,
        linger: Optional[int] = None,
    ):
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {timeout}")
        if max_backoff < timeout:
            raise ValueError("max_backoff must be >= timeout")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.inner = inner
        self.timeout = timeout
        self.max_backoff = max_backoff
        self.max_retries = max_retries
        self.linger = linger if linger is not None else max_backoff + 2
        self.vr = 0
        self.links: Dict[int, _LinkState] = {}
        self.inner_halted = False
        self.linger_left = self.linger
        self.discarded_frames = 0
        self.giveups = 0
        self._ictx: Optional[Context] = None

    # -- inner-program plumbing ----------------------------------------

    def _inner_context(self, ctx: Context) -> Context:
        if self._ictx is None:
            inner_bandwidth = ctx.bandwidth - HEADER_BITS
            if inner_bandwidth < 1:
                raise CongestError(
                    f"bandwidth {ctx.bandwidth} too small for the "
                    f"{HEADER_BITS}-bit resilience header"
                )
            self._ictx = Context(
                node=ctx.node,
                neighbors=ctx.neighbors,
                n=ctx.n,
                bandwidth=inner_bandwidth,
                rng=ctx.rng,
            )
        return self._ictx

    def _load_outbox(self, ictx: Context) -> None:
        """Move the inner program's sends into the per-link out slots."""
        outbox = {m.dst: m.payload for m in ictx._drain_outbox(self.vr)}
        for u, st in self.links.items():
            st.out_has_data = u in outbox
            st.out_payload = outbox.get(u)
            st.acked = st.peer_halted  # nothing to deliver to a halted peer
            st.gave_up = False
            st.retries = 0
            st.backoff = self.timeout
            st.resend_at = 0  # transmit at the next opportunity

    def _advance(self, ctx: Context) -> None:
        """Enter the next virtual round: deliver, run inner, reset links."""
        self.vr += 1
        ictx = self._inner_context(ctx)
        inbox_msgs = [
            Message.make(u, ctx.node, st.in_payload, self.vr - 1)
            for u, st in self.links.items()
            if st.got and st.in_has_data
        ]
        ictx.round = self.vr
        self.inner.on_round(ictx, Inbox(inbox_msgs))
        self._load_outbox(ictx)
        for st in self.links.values():
            if st.buffer is not None:
                st.in_has_data, st.in_payload = st.buffer
                st.buffer = None
                st.got = True
                st.last_rcvd_seq = self.vr % SEQ_MOD
                st.owe_ack = True
            else:
                st.got = st.peer_halted
                st.in_has_data = False
                st.in_payload = None
        if ictx.halted:
            self.inner_halted = True
            self.linger_left = self.linger

    # -- frame handling -------------------------------------------------

    def _parse_frame(self, msg: Message) -> Optional[Tuple]:
        """Validate structure + checksum; return header fields or None."""
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 6:
            return None
        seq_f, has_data, inner_payload, halted, ack_f, check_f = payload
        if not isinstance(check_f, Field):
            return None
        if frame_checksum(
            (seq_f, has_data, inner_payload, halted, ack_f)
        ) != check_f.value:
            return None
        seq = seq_f.value if isinstance(seq_f, Field) else None
        ack = ack_f.value if isinstance(ack_f, Field) else None
        return seq, bool(has_data), inner_payload, bool(halted), ack

    def _receive(self, msg: Message) -> Tuple[bool, bool]:
        """Process one incoming frame.

        Returns ``(valid, needs_us)``: whether the frame passed
        validation, and whether it carried a sequence number (i.e. the
        sender still requires an acknowledgment from us, so a halted
        node must not leave the simulation yet).
        """
        parsed = self._parse_frame(msg)
        if parsed is None:
            self.discarded_frames += 1
            return False, False
        seq, has_data, inner_payload, halted, ack = parsed
        st = self.links[msg.src]
        if halted:
            st.peer_halted = True
        if ack is not None and ack == self.vr % SEQ_MOD:
            st.acked = True
        if seq is not None:
            if seq == self.vr % SEQ_MOD:
                if not st.got:
                    st.got = True
                    st.in_has_data = has_data
                    st.in_payload = inner_payload
                st.last_rcvd_seq = seq
                st.owe_ack = True
            elif seq == (self.vr + 1) % SEQ_MOD:
                # The neighbor is one virtual round ahead; hold its frame
                # but do not ack it yet (acking early would let the
                # neighbor run two rounds ahead, breaking the mod-SEQ
                # disambiguation).
                st.buffer = (has_data, inner_payload)
            else:
                # Stale duplicate (our earlier ack was lost): re-ack it
                # so the neighbor can stop retransmitting.
                st.last_rcvd_seq = seq
                st.owe_ack = True
        return True, seq is not None

    def _drained(self) -> bool:
        """True when no outbound frame is still awaiting an ack."""
        return all(
            st.acked or st.gave_up or st.peer_halted
            for st in self.links.values()
        )

    def _send_frames(self, ctx: Context) -> None:
        """Transmit due data frames and owed acks, one message per link."""
        # Advertise the halt only once every outstanding frame is drained:
        # a premature halted flag would let neighbors advance past the
        # virtual round whose (lost, soon retransmitted) frame carries our
        # final data, and the stale retransmission would be acked without
        # ever being delivered.
        advertise_halted = self.inner_halted and self._drained()
        for u, st in self.links.items():
            send_data = (
                not st.acked
                and not st.gave_up
                and not st.peer_halted
                and ctx.round >= st.resend_at
            )
            # A drained halted node goes otherwise silent, so it must
            # actively announce the halt to peers that do not know yet —
            # they may still be behind and about to open a new virtual
            # round toward us after we are gone.
            announce = advertise_halted and not st.peer_halted
            if not send_data and not st.owe_ack and not announce:
                continue
            if send_data:
                st.retries += 1
                if st.retries > self.max_retries:
                    st.gave_up = True
                    self.giveups += 1
                    if not st.owe_ack:
                        continue
                    send_data = False
                else:
                    st.resend_at = ctx.round + st.backoff
                    st.backoff = min(st.backoff * 2, self.max_backoff)
            seq_f = Field(self.vr % SEQ_MOD, SEQ_MOD) if send_data else None
            has_data = st.out_has_data if send_data else False
            inner_payload = st.out_payload if has_data else None
            ack_f = (
                Field(st.last_rcvd_seq, SEQ_MOD)
                if st.last_rcvd_seq is not None
                else None
            )
            parts = (seq_f, has_data, inner_payload, advertise_halted, ack_f)
            frame = parts + (Field(frame_checksum(parts), CHECKSUM_MOD),)
            ctx.send(u, frame)
            st.owe_ack = False

    # -- engine hooks ---------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        """Run the inner program's initialization and open the links."""
        self.links = {u: _LinkState() for u in ctx.neighbors}
        ictx = self._inner_context(ctx)
        self.inner.on_start(ictx)
        self._load_outbox(ictx)
        if ictx.halted:
            self.inner_halted = True
        if not self.links:
            ctx.halt(output=ictx.output)
            return
        self._send_frames(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        """One physical round: receive, maybe advance, transmit, linger."""
        any_needs_us = False
        for msg in inbox:
            _, needs_us = self._receive(msg)
            any_needs_us |= needs_us

        if not self.inner_halted and all(
            (st.got or st.peer_halted or st.gave_up)
            and (st.acked or st.gave_up or st.peer_halted)
            for st in self.links.values()
        ):
            self._advance(ctx)

        self._send_frames(ctx)

        if self.inner_halted and self._drained():
            if any_needs_us:
                self.linger_left = self.linger
            else:
                self.linger_left -= 1
            if self.linger_left <= 0:
                ctx.halt(output=self._ictx.output)


@dataclass
class ResilientRunResult:
    """Outcome of a fault-injected run of wrapped programs."""

    result: RunResult
    trace: Trace
    fault_stats: FaultStats
    virtual_rounds: int
    giveups: int
    discarded_frames: int

    @property
    def rounds(self) -> int:
        """Physical communication rounds charged by the engine."""
        return self.result.rounds

    def overhead_vs(self, baseline_rounds: int) -> float:
        """Physical-round multiplier relative to a faultless baseline."""
        if baseline_rounds <= 0:
            return float("inf") if self.result.rounds else 1.0
        return self.result.rounds / baseline_rounds


def run_resilient(
    network: Network,
    programs: Dict[int, NodeProgram],
    fault_model: Optional[ChannelFaultModel] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    timeout: int = 2,
    max_backoff: int = 8,
    max_retries: int = 25,
    linger: Optional[int] = None,
) -> ResilientRunResult:
    """Wrap every program in :class:`ResilientProgram` and run under faults."""
    wrapped = {
        v: ResilientProgram(
            programs[v],
            timeout=timeout,
            max_backoff=max_backoff,
            max_retries=max_retries,
            linger=linger,
        )
        for v in network.nodes()
    }
    engine = FaultyEngine(
        network,
        wrapped,
        fault_model=fault_model,
        crash_schedule=crash_schedule,
        fault_seed=fault_seed,
        seed=seed,
        max_rounds=max_rounds,
    )
    result = engine.run()
    return ResilientRunResult(
        result=result,
        trace=engine.trace,
        fault_stats=engine.fault_stats,
        virtual_rounds=max(w.vr for w in wrapped.values()),
        giveups=sum(w.giveups for w in wrapped.values()),
        discarded_frames=sum(w.discarded_frames for w in wrapped.values()),
    )


def resilient_bfs(
    network: Network,
    root: int,
    fault_model: Optional[ChannelFaultModel] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
    **resilience_kwargs,
) -> Tuple[BFSResult, ResilientRunResult]:
    """BFS-with-echo from ``root`` under faults, via reliable links.

    Returns the usual :class:`~repro.congest.algorithms.bfs.BFSResult`
    (with *physical* rounds charged) plus the resilient-run diagnostics.
    """
    programs = {v: BFSEchoProgram(v, root) for v in network.nodes()}
    run = run_resilient(
        network,
        programs,
        fault_model=fault_model,
        crash_schedule=crash_schedule,
        seed=seed,
        fault_seed=fault_seed,
        **resilience_kwargs,
    )
    return bfs_result_from_run(root, run.result), run


def resilient_convergecast(
    network: Network,
    tree: BFSResult,
    values: Dict[int, int],
    combine: Callable[[int, int], int],
    domain: int,
    fault_model: Optional[ChannelFaultModel] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
    **resilience_kwargs,
) -> Tuple[int, ResilientRunResult]:
    """Convergecast one bounded value per node to the root, under faults."""
    vectors: Dict[int, Sequence[int]] = {
        v: [values[v]] for v in network.nodes()
    }
    programs = build_upcast_programs(network, tree, vectors, combine, domain)
    run = run_resilient(
        network,
        programs,
        fault_model=fault_model,
        crash_schedule=crash_schedule,
        seed=seed,
        fault_seed=fault_seed,
        **resilience_kwargs,
    )
    combined = run.result.outputs[tree.root]
    return combined[0], run


def resilient_leader(
    network: Network,
    fault_model: Optional[ChannelFaultModel] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
    horizon: Optional[int] = None,
    **resilience_kwargs,
) -> Tuple[int, ResilientRunResult]:
    """Max-id leader election under faults (self-terminating variant).

    Uses :class:`~repro.congest.algorithms.leader.
    BoundedMaxIdFloodProgram` with a round horizon (default ``n - 1``,
    an upper bound on any eccentricity) because quiescence detection is
    unsound on a lossy network.
    """
    if horizon is None:
        horizon = max(1, network.n - 1)
    programs = {
        v: BoundedMaxIdFloodProgram(v, horizon) for v in network.nodes()
    }
    run = run_resilient(
        network,
        programs,
        fault_model=fault_model,
        crash_schedule=crash_schedule,
        seed=seed,
        fault_seed=fault_seed,
        **resilience_kwargs,
    )
    leader = run.result.common_output()
    return leader, run
