"""The fault-injecting CONGEST engine.

:class:`FaultyEngine` extends the tracing engine through the fault seam
declared on :class:`repro.congest.engine.Engine`, so every existing
:class:`~repro.congest.program.NodeProgram` runs unmodified under
channel faults (drop / burst / corruption / delay) and node faults
(crash-stop / crash-recovery).  Fault events are emitted on the engine's
recorder (:mod:`repro.obs`) — the same bus deliveries ride — so they land
in the run's :class:`~repro.congest.tracing.Trace` as first-class events
(timelines show drops and retries next to ordinary deliveries) *and* in
any other sink the ambient recorder carries (JSONL, metrics).

With the default :class:`~repro.faults.models.NoFaults` channel and no
crash schedule, a run is byte-for-byte identical (rounds, outputs,
traffic stats) to the plain engine — the zero-fault identity the tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..congest.engine import RunResult
from ..congest.messages import Message
from ..congest.network import Network
from ..congest.program import NodeProgram
from ..congest.tracing import (
    CORRUPT,
    CRASH,
    DELAY,
    DELIVER,
    DROP,
    RECOVER,
    Trace,
    TracingEngine,
)
from .crash import CrashSchedule
from .models import ChannelFaultModel, NoFaults

__all__ = ["FaultStats", "FaultyEngine", "run_with_faults"]


@dataclass
class FaultStats:
    """Aggregate fault counters for one run."""

    delivered: int = 0
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    crashes: int = 0
    recoveries: int = 0
    lost_to_down_nodes: int = 0
    per_round_drops: List[int] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        """Messages handed to the channel (delivered + dropped + delayed)."""
        return self.delivered + self.dropped + self.delayed

    def loss_rate(self) -> float:
        """Observed fraction of attempted messages that were dropped."""
        if self.attempted == 0:
            return 0.0
        return self.dropped / self.attempted


class FaultyEngine(TracingEngine):
    """A tracing engine with channel and node faults injected at the seam.

    Args:
        network: the communication graph.
        programs: one program per node, exactly as for the plain engine.
        fault_model: channel fault model; defaults to
            :class:`~repro.faults.models.NoFaults`.
        crash_schedule: node outages; ``None`` means no node faults.
        fault_seed: seed for the fault RNG stream, kept separate from the
            engine's per-node program RNGs so turning faults on never
            perturbs the algorithms' own coin flips.  Defaults to
            ``seed``.
        **kwargs: forwarded to :class:`~repro.congest.engine.Engine`.
    """

    def __init__(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        fault_model: Optional[ChannelFaultModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        fault_seed: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(network, programs, **kwargs)
        self.fault_model = fault_model or NoFaults()
        self.crash_schedule = crash_schedule
        if fault_seed is None:
            fault_seed = kwargs.get("seed")
        self.fault_model.bind(np.random.SeedSequence(fault_seed))
        self.fault_stats = FaultStats()
        self._current_round = 0

    # -- seam overrides -------------------------------------------------

    def _vectorized_ok(self) -> bool:
        """Never bulk-execute: fault models and crash schedules consume
        per-message randomness and per-node liveness through the seam
        hooks, which the column-major fast path bypasses.  (The base
        hook-identity check already fails for this class; this override
        documents the veto explicitly and keeps it even if the seam
        implementation details change.)  A ``schedule="vectorized"``
        request falls back to the active-set loop, bit-identically."""
        return False

    def _begin_round(self, round_no: int) -> None:
        self._current_round = round_no
        self.fault_model.on_round(round_no)
        if self.crash_schedule is None:
            return
        for node, kind in self.crash_schedule.transitions(round_no):
            if kind == "crash":
                self.fault_stats.crashes += 1
                event_kind = CRASH
            else:
                self.fault_stats.recoveries += 1
                event_kind = RECOVER
            self.recorder.fault(event_kind, round_no, node, node)

    def _transmit(
        self, messages: List[Message], round_no: int
    ) -> List[Message]:
        delivered: List[Message] = list(self.fault_model.release(round_no))
        drops_this_round = 0
        for msg in messages:
            verdict, replacement = self.fault_model.apply(msg, round_no)
            if verdict == DELIVER:
                delivered.append(msg)
            elif verdict == CORRUPT:
                self.fault_stats.corrupted += 1
                self._record_fault(CORRUPT, msg, round_no)
                delivered.append(replacement)
            elif verdict == DROP:
                self.fault_stats.dropped += 1
                drops_this_round += 1
                self._record_fault(DROP, msg, round_no)
            elif verdict == DELAY:
                self.fault_stats.delayed += 1
                self._record_fault(DELAY, msg, round_no)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown fault verdict {verdict!r}")
        self.fault_stats.per_round_drops.append(drops_this_round)
        # Messages addressed to a currently-down node are lost in transit.
        if self.crash_schedule is not None:
            kept: List[Message] = []
            for msg in delivered:
                if self.crash_schedule.is_down(msg.dst, round_no):
                    self.fault_stats.lost_to_down_nodes += 1
                    self._record_fault(DROP, msg, round_no)
                else:
                    kept.append(msg)
            delivered = kept
        self.fault_stats.delivered += len(delivered)
        return delivered

    def _channel_pending(self) -> bool:
        return self.fault_model.pending()

    def _node_active(self, v: int, round_no: int) -> bool:
        if self.crash_schedule is None:
            return True
        return not self.crash_schedule.is_down(v, round_no)

    def _all_halted(self) -> bool:
        # Crash-stopped nodes will never halt on their own; without this,
        # a single crash-stop fault would hang every run at the round
        # limit.  They count as (involuntarily) finished.
        if self.crash_schedule is None:
            return super()._all_halted()
        return all(
            ctx.halted
            or self.crash_schedule.is_forever_down(v, self._current_round)
            for v, ctx in self.contexts.items()
        )

    # -- helpers --------------------------------------------------------

    def _record_fault(self, kind: str, msg: Message, round_no: int) -> None:
        """Emit one channel-fault event on the spine (lands in the trace)."""
        self.recorder.fault(kind, round_no, msg.src, msg.dst, msg.bits, msg.value)


def run_with_faults(
    network: Network,
    programs: Dict[int, NodeProgram],
    fault_model: Optional[ChannelFaultModel] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
    recorder=None,
) -> Tuple[RunResult, Trace, FaultStats]:
    """Run programs under faults; return (result, trace, fault stats)."""
    engine = FaultyEngine(
        network,
        programs,
        fault_model=fault_model,
        crash_schedule=crash_schedule,
        fault_seed=fault_seed,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
        recorder=recorder,
    )
    result = engine.run()
    return result, engine.trace, engine.fault_stats
