"""Fault injection & resilience for the CONGEST engine.

The paper's round bounds assume a perfectly synchronous, lossless
network.  This package lets every experiment ask what those assumptions
hide: pluggable channel fault models (Bernoulli loss, Gilbert–Elliott
bursts, in-domain bit corruption, bounded delay/reorder), deterministic
crash-stop / crash-recovery node schedules, a fault-injecting engine
built on the seam in :mod:`repro.congest.engine`, a reliable-link
resilience layer that runs unmodified node programs correctly under
faults, and a fidelity-decay + boosting model for quantum state
transfer.  Experiment E19 sweeps loss rate against the measured round
overhead.
"""

from .crash import CrashSchedule, CrashSpec, random_crash_schedule
from .engine import FaultStats, FaultyEngine, run_with_faults
from .fidelity import FidelityModel, ReamplifiedTransfer, reamplified_transfer
from .models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    ChannelFaultModel,
    CompositeFaults,
    GilbertElliottLoss,
    NoFaults,
)
from .resilience import (
    HEADER_BITS,
    ResilientProgram,
    ResilientRunResult,
    resilient_bfs,
    resilient_convergecast,
    resilient_leader,
    run_resilient,
)

__all__ = [
    "BernoulliLoss",
    "BitCorruption",
    "BoundedDelay",
    "ChannelFaultModel",
    "CompositeFaults",
    "CrashSchedule",
    "CrashSpec",
    "FaultStats",
    "FaultyEngine",
    "FidelityModel",
    "GilbertElliottLoss",
    "HEADER_BITS",
    "NoFaults",
    "ReamplifiedTransfer",
    "ResilientProgram",
    "ResilientRunResult",
    "random_crash_schedule",
    "reamplified_transfer",
    "resilient_bfs",
    "resilient_convergecast",
    "resilient_leader",
    "run_resilient",
    "run_with_faults",
]
