"""repro — a reproduction of van Apeldoorn & de Vos,
"A Framework for Distributed Quantum Queries in the CONGEST Model" (PODC 2022).

Layered design (see DESIGN.md):

* :mod:`repro.congest` — classical CONGEST substrate: round engine with
  O(log n)-bit bandwidth enforcement, BFS(+echo), pipelined multi-source
  BFS, leader election, pipelined tree aggregation, clustering.
* :mod:`repro.quantum` — exact statevector simulator validating the
  amplitude laws (Grover, DJ, QPE, amplitude amplification/estimation).
* :mod:`repro.queries` — the paper's Section 2: (b, p)-parallel-query
  algorithms with metered oracles (Grover, Dürr–Høyer, Ambainis walk,
  Montanaro mean estimation).
* :mod:`repro.core` — the framework itself (Lemma 7, Theorem 8,
  Corollary 9): batch queries served by the network, in charged-formula
  or measured-engine mode.
* :mod:`repro.apps` — Sections 4–6: meeting scheduling, element
  distinctness, distributed Deutsch–Jozsa, diameter/radius/average
  eccentricity, cycle detection, girth, amplitude techniques.
* :mod:`repro.baselines` — the classical CONGEST comparators.
* :mod:`repro.lowerbounds` — runnable reduction gadgets + certificates.
* :mod:`repro.analysis` — power-law fits and experiment tables.
* :mod:`repro.obs` — the observability spine: one event bus for engine
  rounds, faults, query batches, and round charges, with span/phase
  attribution and pluggable sinks (trace, metrics, JSONL).
"""

__version__ = "1.0.0"

from . import (
    analysis,
    apps,
    baselines,
    congest,
    core,
    lowerbounds,
    obs,
    paper,
    quantum,
    queries,
    workloads,
)

__all__ = [
    "analysis",
    "paper",
    "workloads",
    "apps",
    "baselines",
    "congest",
    "core",
    "lowerbounds",
    "obs",
    "quantum",
    "queries",
    "__version__",
]
