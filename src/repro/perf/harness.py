"""Timing helpers and the BENCH_PR2.json report format.

The report schema (``repro-bench/1``) is documented for consumers in
``benchmarks/perf/README.md``; :func:`build_report` is the single place
that constructs it.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

SCHEMA = "repro-bench/1"

# The PR-2 acceptance bar: the summary marks a workload as "met" when its
# best sweep-point speedup reaches this factor.
SPEEDUP_TARGET = 3.0


def measure(fn: Callable[[], Any], reps: int = 3, warmup: int = 1) -> float:
    """Best-of-``reps`` wall time of ``fn()`` in seconds.

    Best-of is the standard micro-benchmark estimator: external noise only
    ever makes a run *slower*, so the minimum is the stablest statistic.
    """
    if reps < 1:
        raise ValueError("need at least one timed repetition")
    for _ in range(warmup):
        fn()
    best = math.inf
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class WorkloadResult:
    """One workload's sweep, ready to embed in the report."""

    name: str
    description: str
    sweep: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def best_speedup(self) -> Optional[float]:
        """Largest *finite* sweep-point speedup, or None.

        A ~0s baseline from :func:`measure` divides out to ``inf`` (and
        a 0/0 to ``nan``); propagating those would mark the workload
        "met" in :func:`build_report` on a degenerate measurement and
        serialize as ``Infinity``/``NaN`` — which is not valid JSON —
        so non-finite entries are excluded here.
        """
        speedups = [
            entry["speedup"]
            for entry in self.sweep
            if "speedup" in entry and math.isfinite(entry["speedup"])
        ]
        return max(speedups) if speedups else None

    @property
    def assertion_only(self) -> bool:
        """True when no sweep point measures a fast-vs-reference speedup.

        Some workloads (``serve``, ``scaling_ceiling``) measure absolute
        capacity and assert correctness rather than racing two paths.
        They have no ``speedup`` entries by design; the summary reports
        them separately instead of as a null best-speedup (the PR-6
        report wrote ``"serve": null``, which read as a failed
        measurement and crashed :mod:`repro.perf.compare`).
        """
        return not any("speedup" in entry for entry in self.sweep)

    def to_json(self) -> Dict[str, Any]:
        # Non-finite floats in raw sweep entries become null: JSON has
        # no Infinity/NaN, and write_report rejects them outright.
        sweep = [
            {
                key: (
                    None
                    if isinstance(value, float) and not math.isfinite(value)
                    else value
                )
                for key, value in entry.items()
            }
            for entry in self.sweep
        ]
        return {
            "description": self.description,
            "sweep": sweep,
            "best_speedup": self.best_speedup,
            "assertion_only": self.assertion_only,
        }


def build_report(
    results: List[WorkloadResult], quick: bool = False
) -> Dict[str, Any]:
    """Assemble the full ``repro-bench/1`` report dict."""
    workloads = {r.name: r.to_json() for r in results}
    met = sorted(
        r.name
        for r in results
        if r.best_speedup is not None and r.best_speedup >= SPEEDUP_TARGET
    )
    # Assertion-only workloads (no fast-vs-reference race) are listed
    # separately: a null in best_speedups would read as a measurement
    # that failed, and the speedup target simply does not apply to them.
    return {
        "schema": SCHEMA,
        "quick": quick,
        "workloads": workloads,
        "summary": {
            "speedup_target": SPEEDUP_TARGET,
            "best_speedups": {
                r.name: r.best_speedup
                for r in results
                if not r.assertion_only
            },
            "assertion_only": sorted(
                r.name for r in results if r.assertion_only
            ),
            "workloads_meeting_target": met,
        },
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a bench report as stable (sorted, indented) JSON.

    ``allow_nan=False`` makes a non-finite value anywhere in the report
    a hard error at write time instead of silently emitting the
    ``Infinity``/``NaN`` extensions no strict JSON parser accepts.
    Summary fields are already finite (``best_speedup`` filters), but
    raw sweep entries could still smuggle one in.
    """
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def format_summary(report: Dict[str, Any]) -> str:
    """A short human-readable digest of a report (printed after a run)."""
    lines = [f"benchmark report ({report['schema']}"
             f"{', quick' if report.get('quick') else ''})"]
    for name, wl in sorted(report["workloads"].items()):
        if wl.get("assertion_only"):
            lines.append(f"  {name}: assertion-only "
                         f"({len(wl['sweep'])} sweep points)")
            continue
        best = wl.get("best_speedup")
        best_s = f"{best:.2f}x" if best is not None else "n/a"
        lines.append(f"  {name}: best speedup {best_s} "
                     f"({len(wl['sweep'])} sweep points)")
    met = report["summary"]["workloads_meeting_target"]
    target = report["summary"]["speedup_target"]
    lines.append(f"  >= {target:.0f}x target met by: {', '.join(met) or 'none'}")
    return "\n".join(lines)
