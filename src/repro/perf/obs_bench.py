"""Instrumentation overhead: null recorder vs. a dense sink.

The observability spine's contract (DESIGN.md §"Observability spine") is
that *disabled* instrumentation is free: with the null recorder installed
the engine pays one cached-boolean branch per delivery and per round, and
nothing else.  This workload measures that claim on the engine flooding
benchmark and **enforces it** — the disabled path must stay within
:data:`OVERHEAD_BUDGET` (5 %) of a bare engine whose observation seam is
compiled out entirely, or the workload raises.

The enabled path (a dense :class:`~repro.obs.MetricsSink` receiving every
round and delivery event) is timed alongside for the report; it has no
budget — recording is allowed to cost — but the ratio documents what a
run under ``python -m repro trace`` pays.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Tuple

from ..congest import topologies
from ..congest.algorithms.bfs import BFSEchoProgram
from ..congest.engine import Engine, RunResult
from ..congest.network import Network
from ..obs import MetricsSink, Recorder
from .harness import WorkloadResult

#: Maximum tolerated slowdown of the null-recorder (disabled) path
#: relative to an engine with no observation seam at all.
OVERHEAD_BUDGET = 0.05


class _BareEngine(Engine):
    """The pre-spine engine: recorder branches forced out of every path."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._recording = False

    def _on_deliver(self, msg, round_no):
        pass


def _flood(net: Network, engine_cls=Engine, recorder=None) -> RunResult:
    programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
    engine = engine_cls(net, programs, seed=1, recorder=recorder)
    return engine.run()


def _dense_flood(net: Network) -> RunResult:
    # A fresh recorder+sink per run so timed repetitions don't accumulate.
    return _flood(net, recorder=Recorder([MetricsSink()]))


def _topologies(quick: bool) -> Dict[str, Tuple[Network, int]]:
    """name -> (network, timing reps)."""
    if quick:
        return {
            "random_regular(n=400,d=4)": (
                topologies.random_regular(400, 4, seed=1), 9),
            "grid(20x15)": (topologies.grid(20, 15), 9),
        }
    return {
        "random_regular(n=1000,d=4)": (
            topologies.random_regular(1000, 4, seed=1), 5),
        "grid(40x25)": (topologies.grid(40, 25), 5),
    }


def _measure_interleaved(thunks: Dict[str, Any], reps: int) -> Dict[str, float]:
    """Best-of-``reps`` wall time per thunk, with the variants interleaved.

    Timing each variant in its own block lets system-level drift (thermal
    throttling, a background process starting mid-benchmark) bias the
    *ratio* between them even when each best-of is individually stable.
    Interleaving — one rep of every variant per pass — makes any drift
    hit all variants equally, which is what an overhead assertion needs.
    """
    for fn in thunks.values():  # warmup
        fn()
    best = {name: float("inf") for name in thunks}
    for _ in range(reps):
        for name, fn in thunks.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def obs_overhead_workload(quick: bool = False) -> WorkloadResult:
    """Time bare vs null-recorder vs dense-sink engine flooding runs."""
    result = WorkloadResult(
        name="obs_overhead",
        description=(
            "BFS-with-echo flooding; wall time with the observation seam "
            "removed (bare) vs the null recorder (disabled spine) vs a "
            "dense MetricsSink (every event counted).  Asserts identical "
            "results and a disabled-path overhead under "
            f"{OVERHEAD_BUDGET:.0%}."
        ),
    )
    for name, (net, reps) in _topologies(quick).items():
        bare = _flood(net, engine_cls=_BareEngine)
        null = _flood(net)
        dense = _dense_flood(net)
        for label, other in (("null", null), ("dense", dense)):
            if (bare.rounds, bare.outputs) != (other.rounds, other.outputs):
                raise AssertionError(
                    f"{label}-recorder run diverged on {name}: "
                    f"{bare.rounds} vs {other.rounds} rounds"
                )
        times = _measure_interleaved(
            {
                "bare": lambda net=net: _flood(net, engine_cls=_BareEngine),
                "null": lambda net=net: _flood(net),
                "dense": lambda net=net: _dense_flood(net),
            },
            reps=reps,
        )
        t_bare, t_null, t_dense = times["bare"], times["null"], times["dense"]
        disabled_overhead = t_null / t_bare - 1.0
        if disabled_overhead >= OVERHEAD_BUDGET:
            raise AssertionError(
                f"disabled-path instrumentation overhead {disabled_overhead:.1%} "
                f"exceeds the {OVERHEAD_BUDGET:.0%} budget on {name} "
                f"(bare {t_bare:.4f}s, null recorder {t_null:.4f}s)"
            )
        result.sweep.append({
            "topology": name,
            "n": net.n,
            "rounds": bare.rounds,
            "bare_s": t_bare,
            "null_s": t_null,
            "dense_s": t_dense,
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": t_dense / t_null - 1.0,
        })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    start = time.perf_counter()
    wl = obs_overhead_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"({time.perf_counter() - start:.1f}s total)")
