"""Communication-model layer benchmarks (PR 8): clique fast paths + duels.

``python -m repro bench --workload models`` writes ``BENCH_PR8.json``
with three sections in one workload sweep:

* **complete-topology race** — building K_n (network + fingerprint +
  CSR) via :class:`~repro.congest.network.CompleteNetwork`'s closed
  forms vs the historical ``Network(nx.complete_graph(n))`` path, with
  fingerprint and CSR-array identity asserted before timing.  This is
  the fast-vs-reference speedup that makes CONGEST-CLIQUE sweeps usable.
* **diameter duel fit** — the E20 workload family's measured log–log
  exponents (quantum √(nD) slope vs classical Θ(n) slope), embedded so
  the PR 8 report carries the separation headline.
* **APSP duel fit** — E21's charged Õ(n^{1/4}) vs Õ(n^{1/3}) exponents
  plus one engine-mode clique row-broadcast validation point
  (assertion: distances exact).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..congest.csr import build_csr
from ..congest.network import CompleteNetwork, Network
from .harness import WorkloadResult, measure


def _reference_complete(n: int) -> Network:
    """The pre-PR-8 path: a generic Network over nx.complete_graph."""
    return Network(nx.complete_graph(n))


def _build_and_touch(net: Network) -> str:
    """Force the expensive parts: adjacency, fingerprint, CSR."""
    fp = net.topology_fingerprint()
    build_csr(net)
    return fp


def _assert_identical(n: int) -> None:
    """CompleteNetwork must be observationally identical to the nx build."""
    fast, ref = CompleteNetwork(n), _reference_complete(n)
    if fast.topology_fingerprint() != ref.topology_fingerprint():
        raise AssertionError(f"fingerprint mismatch for K_{n}")
    for v in (0, n // 2, n - 1):
        if fast.neighbors(v) != ref.neighbors(v):
            raise AssertionError(f"neighbor mismatch for K_{n} at node {v}")
    a, b = build_csr(fast), build_csr(ref)
    same = (
        np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.rev, b.rev)
    )
    if not same:
        raise AssertionError(f"CSR mismatch for K_{n}")


def models_workload(quick: bool = False) -> WorkloadResult:
    """Race the clique fast paths and embed the E20/E21 duel fits."""
    result = WorkloadResult(
        name="models",
        description=(
            "PR 8 communication-model layer: CompleteNetwork closed-form "
            "build+fingerprint+CSR vs Network(nx.complete_graph) "
            "(identity asserted before timing), plus the E20 diameter and "
            "E21 CONGEST-CLIQUE APSP duel exponent fits"
        ),
    )

    sizes = [200, 600] if quick else [500, 2000, 5000]
    reps = 3 if quick else 5
    for n in sizes:
        _assert_identical(n)
        t_fast = measure(
            lambda n=n: _build_and_touch(CompleteNetwork(n)), reps=reps
        )
        t_ref = measure(
            lambda n=n: _build_and_touch(_reference_complete(n)), reps=reps
        )
        result.sweep.append({
            "section": "complete_topology",
            "n": n,
            "fast_s": t_fast,
            "reference_s": t_ref,
            "speedup": t_ref / t_fast if t_fast else float("inf"),
        })

    # Duel fits: reuse the experiments so the report and EXPERIMENTS.md
    # can never disagree about the measured exponents.
    from ..experiments import e20_diameter, e21_apsp

    e20 = e20_diameter.run(quick=True, seed=0)
    if not (e20.quantum_exponent < e20.classical_exponent
            and e20.min_accuracy == 1.0):
        raise AssertionError(
            f"diameter duel regressed: q n^{e20.quantum_exponent:.2f} vs "
            f"c n^{e20.classical_exponent:.2f}, acc={e20.min_accuracy}"
        )
    result.sweep.append({
        "section": "diameter_duel",
        "quantum_exponent": e20.quantum_exponent,
        "classical_exponent": e20.classical_exponent,
        "min_accuracy": e20.min_accuracy,
    })

    e21 = e21_apsp.run(quick=True, seed=0)
    if not (e21.quantum_exponent < e21.classical_exponent
            and e21.all_validated):
        raise AssertionError(
            f"APSP duel regressed: q n^{e21.quantum_exponent:.2f} vs "
            f"c n^{e21.classical_exponent:.2f}, "
            f"validated={e21.all_validated}"
        )
    result.sweep.append({
        "section": "apsp_duel",
        "quantum_exponent": e21.quantum_exponent,
        "classical_exponent": e21.classical_exponent,
        "engine_validated": e21.all_validated,
    })
    return result
