"""Scaling ceiling: how large a network one vectorized engine run sustains.

``python -m repro bench --workload scaling_ceiling`` answers the PR-7
capacity question: with column-major rounds over CSR adjacency, what is
the largest n for which a full BFS-with-echo flood completes within a
fixed wall-clock budget per topology family?  Points at n ≥ 10^5 are the
headline — two orders of magnitude beyond what the per-node schedulers
sustain interactively.

This is an *assertion-only* workload (no fast-vs-reference race): each
point runs the vectorized schedule once and records absolute throughput.
Correctness is still pinned — the smallest rung of every family is run
under both ``active`` and ``vectorized`` and asserted bit-identical
(rounds, outputs, traffic stats) before any large point is timed, and
every vectorized run is asserted to have taken the fast path.

Points fan out across worker processes via :mod:`repro.parallel` — the
graphs are built inside the workers (a 2·10^5-node networkx build is a
significant fraction of a point's cost), and only small result dicts
travel back, exactly the executor's intended shape.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from ..congest import topologies
from ..congest.algorithms.bfs import BFSEchoProgram
from ..congest.engine import Engine
from ..parallel.executor import Task, run_parallel
from .harness import WorkloadResult

#: Wall-clock budget one point must fit in to count toward the ceiling.
TIME_BUDGET_S = 30.0
QUICK_TIME_BUDGET_S = 5.0


def _build(family: str, n: int) -> Tuple[object, int]:
    """Construct the family's ~n-node instance; returns (network, exact n)."""
    if family == "random_regular(d=4)":
        net = topologies.random_regular(n, 4, seed=7)
    elif family == "grid":
        side = max(2, round(n ** 0.5))
        net = topologies.grid(side, side)
    elif family == "star":
        net = topologies.star(n)
    else:
        raise ValueError(f"unknown scaling family {family!r}")
    return net, net.n


def _flood(net, schedule: str):
    programs = {v: BFSEchoProgram(v, 0) for v in net.nodes()}
    engine = Engine(net, programs, seed=1, schedule=schedule)
    return engine, engine.run()


def scaling_point(family: str, n: int, check_identity: bool = False) -> Dict:
    """One (family, n) measurement — module-level so workers can pickle it."""
    net, exact_n = _build(family, n)
    if check_identity:
        _, active = _flood(net, "active")
    start = time.perf_counter()
    engine, vec = _flood(net, "vectorized")
    wall_s = time.perf_counter() - start
    if engine.vectorized_fallback is not None:
        raise AssertionError(
            f"vectorized fell back on {family} n={exact_n}: "
            f"{engine.vectorized_fallback}"
        )
    if check_identity:
        same = (
            active.rounds == vec.rounds
            and active.outputs == vec.outputs
            and active.stats.messages == vec.stats.messages
            and active.stats.bits == vec.stats.bits
            and active.stats.per_round_messages == vec.stats.per_round_messages
        )
        if not same:
            raise AssertionError(
                f"active/vectorized mismatch on {family} n={exact_n}"
            )
    return {
        "family": family,
        "n": exact_n,
        "rounds": vec.rounds,
        "messages": vec.stats.messages,
        "identity_checked": check_identity,
        "wall_s": wall_s,
        "rounds_per_s": vec.rounds / wall_s if wall_s else float("inf"),
        "nodes_per_s": exact_n / wall_s if wall_s else float("inf"),
        "messages_per_s": (
            vec.stats.messages / wall_s if wall_s else float("inf")
        ),
    }


def _ladders(quick: bool) -> Dict[str, List[int]]:
    """family -> ascending target sizes (smallest rung is identity-checked)."""
    if quick:
        return {
            "random_regular(d=4)": [500, 2000],
            "grid": [500, 2000],
            "star": [500, 2000],
        }
    return {
        "random_regular(d=4)": [20_000, 100_000, 200_000],
        "grid": [20_000, 100_000, 200_000],
        "star": [20_000, 100_000, 200_000],
    }


def _jobs() -> int:
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def scaling_ceiling_workload(quick: bool = False) -> WorkloadResult:
    """Largest sustainable n per topology family under vectorized rounds."""
    budget = QUICK_TIME_BUDGET_S if quick else TIME_BUDGET_S
    result = WorkloadResult(
        name="scaling_ceiling",
        description=(
            "single-engine vectorized BFS-with-echo floods at increasing n "
            "per topology family; absolute wall time and throughput, with "
            "the smallest rung of each family asserted bit-identical to "
            "the active-set schedule (assertion-only: no speedup race; "
            f"ceiling = largest n finishing within {budget:.0f}s)"
        ),
    )
    ladders = _ladders(quick)
    tasks = []
    for family, sizes in ladders.items():
        for i, n in enumerate(sizes):
            tasks.append(Task(
                key=f"{family}/n={n}",
                fn=scaling_point,
                kwargs={
                    "family": family,
                    "n": n,
                    "check_identity": i == 0,
                },
            ))
    points = run_parallel(tasks, jobs=_jobs(), retries=0)
    by_family: Dict[str, List[Dict]] = {}
    for task, point in zip(tasks, points):
        if not isinstance(point, dict):  # TaskFailure: surface, don't bury
            raise AssertionError(f"scaling point {task.key} failed: {point}")
        result.sweep.append(point)
        by_family.setdefault(point["family"], []).append(point)
    for family, sizes in ladders.items():
        within = [p["n"] for p in by_family[family] if p["wall_s"] <= budget]
        result.sweep.append({
            "family": family,
            "kind": "ceiling",
            "time_budget_s_limit": budget,
            "ceiling_n": max(within) if within else 0,
            "largest_measured_n": max(p["n"] for p in by_family[family]),
        })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    wl = scaling_ceiling_workload(quick=True)
    for entry in wl.sweep:
        print(entry)
