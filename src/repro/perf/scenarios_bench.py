"""Scenario-matrix benchmarks (PR 9): determinism, fidelity, crossovers.

``python -m repro bench --workload scenarios`` writes ``BENCH_PR9.json``
with three assertion-only sections in one workload sweep:

* **fault-model reuse** — every :class:`~repro.faults.ChannelFaultModel`
  is bound, driven over a deterministic traffic schedule, re-bound with
  the same seed and driven again; the verdict streams must be
  byte-identical and no held message may leak across runs (the
  determinism contract fixed in this PR).
* **fidelity bill** — the link-fidelity axis: the Lemma 7
  re-amplification bill must grow monotonically as fidelity drops.
* **wall-clock crossovers** — the E22 verdicts embedded so the report
  carries the "Mind the Õ" headline: the rounds-advantage crossover
  exists, the mature-link wall-clock crossover is measured or predicted,
  and the near-term link is latency-dominated.

Assertion-only (no fast-vs-reference race): like ``serve`` and
``scaling_ceiling``, this workload certifies behavior rather than
timing a speedup.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..congest.encoding import Field
from ..congest.messages import Message
from ..faults.models import (
    BernoulliLoss,
    BitCorruption,
    BoundedDelay,
    ChannelFaultModel,
    CompositeFaults,
    GilbertElliottLoss,
)
from .harness import WorkloadResult


def _traffic(rounds: int = 16) -> List[Tuple[int, Message]]:
    msgs = []
    for r in range(1, rounds + 1):
        for src, dst in ((0, 1), (1, 0), (1, 2), (2, 3)):
            msgs.append((r, Message.make(src, dst, Field(r % 8, 8), r)))
    return msgs


def _verdict_stream(model: ChannelFaultModel, seed: int) -> list:
    model.bind(np.random.SeedSequence(seed))
    msgs = _traffic()
    stream = []
    for r in range(1, 16 + 8 + 1):
        for released in model.release(r):
            stream.append(("release", r, released.src, released.dst))
        for round_no, msg in msgs:
            if round_no == r:
                verdict, out = model.apply(msg, r)
                stream.append(
                    (verdict, r, msg.src, msg.dst,
                     out.payload if out is not None else None)
                )
    return stream


def _reuse_models() -> List[ChannelFaultModel]:
    return [
        BernoulliLoss(0.3),
        GilbertElliottLoss(p_enter_burst=0.4, loss_bad=0.9),
        BitCorruption(0.4),
        BoundedDelay(0.5, max_delay=3),
        CompositeFaults([
            GilbertElliottLoss(p_enter_burst=0.3, loss_bad=0.8),
            BoundedDelay(0.4, max_delay=2),
        ]),
    ]


def scenarios_workload(quick: bool = False) -> WorkloadResult:
    """Certify the scenario matrix: determinism, fidelity, crossovers."""
    result = WorkloadResult(
        name="scenarios",
        description=(
            "PR 9 scenario matrix: fault-model reuse determinism "
            "(bind/run/bind/run verdict-stream identity), the link-"
            "fidelity re-amplification bill, and the E22 quantum-vs-"
            "classical wall-clock crossover verdicts (assertion-only)"
        ),
    )

    for model in _reuse_models():
        first = _verdict_stream(model, seed=7)
        second = _verdict_stream(model, seed=7)
        if first != second:
            raise AssertionError(
                f"{type(model).__name__}: re-bound verdict stream diverged"
            )
        if model.pending():
            raise AssertionError(
                f"{type(model).__name__}: held messages leaked past the run"
            )
        result.sweep.append({
            "section": "fault_reuse",
            "model": model.describe(),
            "verdicts": len(first),
            "identical_on_rebind": True,
        })

    # Fidelity + crossover sections ride on E22 so the report and
    # EXPERIMENTS.md can never disagree about the verdicts.
    from ..experiments import e22_scenarios

    e22 = e22_scenarios.run(quick=True, seed=0)
    if not e22.fidelity_monotone:
        raise AssertionError("fidelity re-amplification bill not monotone")
    result.sweep.append({
        "section": "fidelity_bill",
        "monotone": e22.fidelity_monotone,
        "max_overhead": e22.fidelity_max_overhead,
    })

    ok = (
        e22.rounds_crossover_n is not None
        and e22.mature_crossover_known
        and e22.near_term.latency_dominated
    )
    if not ok:
        raise AssertionError(
            f"crossover verdicts regressed: rounds={e22.rounds_crossover_n}, "
            f"mature known={e22.mature_crossover_known}, near-term "
            f"latency-dominated={e22.near_term.latency_dominated}"
        )
    result.sweep.append({
        "section": "crossover",
        "rounds_crossover_n": e22.rounds_crossover_n,
        "mature_wall_clock_n": e22.mature.wall_clock_crossover_n,
        "mature_predicted_n": e22.mature.predicted_crossover_n,
        "mature_premium": e22.mature.premium,
        "near_term_premium": e22.near_term.premium,
        "near_term_latency_dominated": e22.near_term.latency_dominated,
        "break_even_exponent": e22.break_even_exponent,
    })
    result.sweep.append({
        "section": "matrix",
        "cells": len(e22.matrix),
        "honest_cells_correct": e22.honest_cells_correct,
    })
    return result
