"""Serving-daemon throughput and tail latency (BENCH_PR6.json).

The :mod:`repro.serve` pitch: PR 5's scheduler amortizes rounds across
whoever is waiting, but only inside one blocking process; the daemon
keeps that amortization under *sustained open-loop traffic* while
reporting what a service owner actually watches — sustained queries/sec
and p50/p99 latency (round counts alone hide queueing, the "Mind the Õ"
critique).

Each sweep point offers ``clients`` Poisson arrivals (deterministic via
:func:`repro.parallel.derive_seed`) to a daemon, then replays the *exact
same arrival sequence* through PR 5's synchronous
:class:`~repro.sched.CoalescingScheduler` at equal width and asserts the
daemon's amortized rounds-per-query is **no worse** — stepping batches on
an event loop must not cost rounds; both run memo-off so the comparison
is packing against packing, not cache against cache.  A final
engine-mode point exercises the full stepwise distribute/convergecast
interleaving rather than formula charging.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict

from ..core.operation import Operation
from ..sched import CoalescingScheduler
from ..serve.daemon import QueryService
from ..serve.loadgen import LoadSpec, generate_arrivals, run_load
from ..serve.session import build_profile
from ..serve.tenants import TenantQuota
from .harness import WorkloadResult

#: Round-identity tolerance: stride-order dispatch may pack tenants into
#: batches in a different order than arrival-order FIFO, which in engine
#: mode can shift a boundary batch by a round or two.
ROUNDS_TOLERANCE = 1.02


def _sync_baseline(
    net, cfg, arrivals
) -> Dict[str, Any]:
    """The same offered sequence through PR 5's blocking scheduler."""
    sched = CoalescingScheduler(net, cfg, memo=False)
    start = time.perf_counter()
    tickets = [
        sched.submit(Operation.query(a.tenant, a.indices, label=a.label))
        for a in arrivals
    ]
    sched.drain()
    for ticket in tickets:
        sched.result(ticket)
    wall = time.perf_counter() - start
    report = sched.report()
    return {
        "rounds_per_query": report.amortized_rounds_per_query,
        "wall_s": wall,
        "batches": report.physical_batches,
    }


def _serve_point(
    clients: int, mode: str, parallelism: int, k: int, seed: int
) -> Dict[str, Any]:
    net, cfg = build_profile(k=k, parallelism=parallelism, mode=mode)
    spec = LoadSpec(
        clients=clients, tenants=4, rate_hz=2000.0, seed=seed,
        queries_max=min(4, parallelism),
    )
    arrivals = generate_arrivals(spec, k)

    # memo off on both sides: the acceptance claim is about batch
    # packing, and memo-hit order would otherwise differ between
    # arrival-order and stride-order serving.
    service = QueryService(
        default_quota=TenantQuota("default", max_pending=1 << 16),
        flush_after_ms=250.0,  # under flood, only the tail flushes partial
        memo=False,
    )
    service.add_profile(net, cfg)
    start = time.perf_counter()
    load = asyncio.run(run_load(service, spec))
    serve_wall = time.perf_counter() - start
    serve_report = service.pool.acquire("default").scheduler.report()

    sync = _sync_baseline(net, cfg, arrivals)
    serve_rpq = serve_report.amortized_rounds_per_query
    assert load.completed == load.accepted == clients, (
        f"open-loop run dropped work: {load.to_json()}"
    )
    assert serve_rpq <= sync["rounds_per_query"] * ROUNDS_TOLERANCE, (
        f"daemon amortization regressed: {serve_rpq:.3f} rounds/query vs "
        f"synchronous {sync['rounds_per_query']:.3f} at width {parallelism}"
    )
    return {
        "clients": clients,
        "mode": mode,
        "parallelism": parallelism,
        "k": k,
        "qps": load.qps,
        "p50_ms": load.p50_ms,
        "p99_ms": load.p99_ms,
        "wall_s": serve_wall,
        "batches": serve_report.physical_batches,
        "serve_rounds_per_query": serve_rpq,
        "sync_rounds_per_query": sync["rounds_per_query"],
        "sync_wall_s": sync["wall_s"],
    }


def serve_daemon_workload(quick: bool = False) -> WorkloadResult:
    """Open-loop daemon throughput/latency vs the synchronous scheduler."""
    if quick:
        points = [
            (200, "formula", 8, 64),
            (100, "engine", 8, 32),
        ]
    else:
        points = [
            (1000, "formula", 8, 64),
            (5000, "formula", 16, 128),
            (400, "engine", 8, 64),
        ]
    result = WorkloadResult(
        name="serve",
        description=(
            "open-loop Poisson clients served by the asyncio daemon "
            "(stepwise batches, stride-fair tenants) vs the same arrival "
            "sequence on the synchronous coalescing scheduler at equal "
            "width; asserts amortized rounds-per-query is no worse"
        ),
    )
    for clients, mode, parallelism, k in points:
        entry = _serve_point(clients, mode, parallelism, k, seed=7)
        result.sweep.append(entry)
    return result
