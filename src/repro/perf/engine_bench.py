"""Engine round throughput: active-set vs dense scheduling.

The workload is BFS-with-echo flooding on sparse topologies — the exact
shape the active-set scheduler targets: a wavefront of busy nodes moving
through a large, mostly idle network.  Dense scheduling executes every
node every round; the active set executes only nodes with deliveries,
recent sends, or wakeups.  Results are asserted identical before timing.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ..congest import topologies
from ..congest.algorithms.bfs import BFSEchoProgram
from ..congest.engine import RunResult, run_program
from ..congest.network import Network
from .harness import WorkloadResult, measure


def _flood(net: Network, schedule: str, root: int = 0) -> RunResult:
    programs = {v: BFSEchoProgram(v, root) for v in net.nodes()}
    return run_program(net, programs, seed=1, schedule=schedule)


def _topologies(quick: bool) -> Dict[str, Tuple[Network, int]]:
    """name -> (network, timing reps)."""
    if quick:
        return {
            "random_regular(n=200,d=4)": (
                topologies.random_regular(200, 4, seed=1), 2),
            "grid(12x10)": (topologies.grid(12, 10), 2),
            "cycle(n=200)": (topologies.cycle(200), 2),
        }
    return {
        "random_regular(n=2000,d=4)": (
            topologies.random_regular(2000, 4, seed=1), 2),
        "grid(50x40)": (topologies.grid(50, 40), 2),
        "cycle(n=2000)": (topologies.cycle(2000), 1),
    }


def engine_flooding_workload(quick: bool = False) -> WorkloadResult:
    """Time dense vs active-set engine scheduling on flooding workloads."""
    result = WorkloadResult(
        name="engine_flooding",
        description=(
            "BFS-with-echo flooding on sparse topologies; wall time of the "
            "full engine run under dense vs active-set scheduling "
            "(identical rounds/outputs asserted before timing)"
        ),
    )
    for name, (net, reps) in _topologies(quick).items():
        active = _flood(net, "active")
        dense = _flood(net, "dense")
        if (active.rounds, active.outputs) != (dense.rounds, dense.outputs):
            raise AssertionError(
                f"schedule mismatch on {name}: "
                f"{active.rounds} vs {dense.rounds} rounds"
            )
        t_active = measure(lambda net=net: _flood(net, "active"), reps=reps)
        t_dense = measure(lambda net=net: _flood(net, "dense"), reps=reps)
        result.sweep.append({
            "topology": name,
            "n": net.n,
            "rounds": active.rounds,
            "dense_s": t_dense,
            "active_s": t_active,
            "dense_rounds_per_s": active.rounds / t_dense,
            "active_rounds_per_s": active.rounds / t_active,
            "speedup": t_dense / t_active,
        })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    start = time.perf_counter()
    wl = engine_flooding_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x "
          f"({time.perf_counter() - start:.1f}s total)")
