"""Engine round throughput: active-set vs dense vs vectorized scheduling.

The workload is BFS-with-echo flooding on sparse topologies — the exact
shape the schedulers differ on: a wavefront of busy nodes moving through
a large, mostly idle network.  Dense scheduling executes every node every
round; the active set executes only nodes with deliveries, recent sends,
or wakeups; the vectorized schedule (PR 7) executes whole rounds as
column-major array ops over the CSR adjacency, with no per-node Python
at all.  All three are asserted bit-identical (rounds, outputs, traffic
stats) before timing, and the vectorized run is asserted to have taken
the fast path (no silent fallback).  The headline ``speedup`` is
vectorized-over-dense — the PR-7 10x bar on ``random_regular(n=2000,d=4)``.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ..congest import topologies
from ..congest.algorithms.bfs import BFSEchoProgram
from ..congest.engine import Engine, RunResult
from ..congest.network import Network
from .harness import WorkloadResult, measure


def _flood(net: Network, schedule: str, root: int = 0) -> Tuple[Engine, RunResult]:
    programs = {v: BFSEchoProgram(v, root) for v in net.nodes()}
    engine = Engine(net, programs, seed=1, schedule=schedule)
    return engine, engine.run()


def _fingerprint(result: RunResult) -> Tuple:
    """Everything the schedules must agree on, hashable for comparison."""
    return (
        result.rounds,
        tuple(sorted(result.outputs.items())),
        result.stats.messages,
        result.stats.bits,
        tuple(result.stats.per_round_messages),
    )


def _topologies(quick: bool) -> Dict[str, Tuple[Network, int]]:
    """name -> (network, timing reps)."""
    if quick:
        return {
            "random_regular(n=200,d=4)": (
                topologies.random_regular(200, 4, seed=1), 2),
            "grid(12x10)": (topologies.grid(12, 10), 2),
            "cycle(n=200)": (topologies.cycle(200), 2),
        }
    return {
        "random_regular(n=2000,d=4)": (
            topologies.random_regular(2000, 4, seed=1), 2),
        "grid(50x40)": (topologies.grid(50, 40), 2),
        "cycle(n=2000)": (topologies.cycle(2000), 1),
    }


def engine_flooding_workload(quick: bool = False) -> WorkloadResult:
    """Time dense vs active vs vectorized scheduling on flooding workloads."""
    result = WorkloadResult(
        name="engine_flooding",
        description=(
            "BFS-with-echo flooding on sparse topologies; wall time of the "
            "full engine run under dense vs active-set vs vectorized "
            "scheduling (identical rounds/outputs/stats asserted before "
            "timing; 'speedup' is vectorized over dense)"
        ),
    )
    for name, (net, reps) in _topologies(quick).items():
        _, active = _flood(net, "active")
        _, dense = _flood(net, "dense")
        vec_engine, vectorized = _flood(net, "vectorized")
        if vec_engine.vectorized_fallback is not None:
            raise AssertionError(
                f"vectorized run fell back on {name}: "
                f"{vec_engine.vectorized_fallback}"
            )
        fingerprints = {
            "active": _fingerprint(active),
            "dense": _fingerprint(dense),
            "vectorized": _fingerprint(vectorized),
        }
        if len(set(fingerprints.values())) != 1:
            raise AssertionError(
                f"schedule mismatch on {name}: rounds "
                f"{ {k: v[0] for k, v in fingerprints.items()} }"
            )
        t_active = measure(lambda net=net: _flood(net, "active"), reps=reps)
        t_dense = measure(lambda net=net: _flood(net, "dense"), reps=reps)
        t_vec = measure(lambda net=net: _flood(net, "vectorized"), reps=reps)
        result.sweep.append({
            "topology": name,
            "n": net.n,
            "rounds": active.rounds,
            "dense_s": t_dense,
            "active_s": t_active,
            "vectorized_s": t_vec,
            "dense_rounds_per_s": active.rounds / t_dense,
            "active_rounds_per_s": active.rounds / t_active,
            "vectorized_rounds_per_s": active.rounds / t_vec,
            "active_over_dense_speedup": t_dense / t_active,
            "vectorized_over_active_speedup": t_active / t_vec,
            "speedup": t_dense / t_vec,
        })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    start = time.perf_counter()
    wl = engine_flooding_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x "
          f"({time.perf_counter() - start:.1f}s total)")
