"""Repeated engine-mode framework invocations: PreparedNetwork warm vs cold.

Many experiments call :func:`repro.core.framework.run_framework` over and
over on one topology (parameter sweeps, repeated trials).  The setup phase
— leader election plus BFS-with-echo over every edge — is deterministic
per (network, seed), so the PreparedNetwork cache removes it from all but
the first call.  Results (rounds, outputs, leader) are asserted identical
between cold and warm runs before timing.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..congest import topologies
from ..congest.network import Network
from ..core.framework import (
    DistributedInput,
    FrameworkConfig,
    FrameworkRun,
    invalidate_prepared,
    run_framework,
)
from ..core.semigroup import or_semigroup
from .harness import WorkloadResult, measure


def _make_case(n: int, degree: int) -> Tuple[Network, DistributedInput]:
    net = topologies.random_regular(n, degree, seed=3)
    rnd = random.Random(0)
    vectors = {v: [rnd.randint(0, 1) for _ in range(4)] for v in net.nodes()}
    return net, DistributedInput(vectors=vectors, semigroup=or_semigroup())


def _algorithm(oracle, _rng):
    return tuple(oracle.query_batch([0, 1]))


def _invoke(net: Network, di: DistributedInput, reuse: bool) -> FrameworkRun:
    return run_framework(net, _algorithm, config=FrameworkConfig(
        parallelism=2, dist_input=di, mode="engine", seed=5,
        reuse_setup=reuse,
    ))


def framework_repeat_workload(quick: bool = False) -> WorkloadResult:
    """Time repeated run_framework calls with and without the setup cache."""
    result = WorkloadResult(
        name="framework_repeat",
        description=(
            "repeated engine-mode run_framework calls (one 2-query batch) "
            "on a fixed random-regular topology; cold = setup recomputed "
            "per call, warm = PreparedNetwork cache (identical rounds, "
            "results and charges asserted)"
        ),
    )
    cases: List[Tuple[int, int, int]] = (
        [(60, 4, 3)] if quick else [(400, 8, 3), (800, 8, 2)]
    )
    for n, degree, reps in cases:
        net, di = _make_case(n, degree)
        invalidate_prepared(net)
        cold_run = _invoke(net, di, reuse=False)
        warm_run = _invoke(net, di, reuse=True)  # fills the cache
        warm_run2 = _invoke(net, di, reuse=True)
        for other in (warm_run, warm_run2):
            same = (
                cold_run.result == other.result
                and cold_run.total_rounds == other.total_rounds
                and cold_run.leader == other.leader
            )
            if not same:
                raise AssertionError(f"cached setup changed results on n={n}")
        t_cold = measure(
            lambda net=net, di=di: _invoke(net, di, reuse=False), reps=reps
        )
        t_warm = measure(
            lambda net=net, di=di: _invoke(net, di, reuse=True), reps=reps
        )
        result.sweep.append({
            "n": n,
            "degree": degree,
            "total_rounds": cold_run.total_rounds,
            "cold_s": t_cold,
            "warm_s": t_warm,
            "cold_invocations_per_s": 1.0 / t_cold,
            "warm_invocations_per_s": 1.0 / t_warm,
            "speedup": t_cold / t_warm,
        })
        invalidate_prepared(net)
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    wl = framework_repeat_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x")
