"""Coalescing-scheduler throughput: amortized rounds-per-query vs callers.

The :mod:`repro.sched` pitch is amortization: Theorem 8 charges a full
width-p batch whether one caller fills it or eight do, so packing many
callers' under-filled submissions into one physical
distribute/convergecast divides the batch cost across all of their
queries.  This workload measures exactly that claim.  Each synchronous
caller submits a small burst of under-filled query sets and then redeems
them (redemption is the execution barrier a real caller hits); with c
concurrent callers, c bursts are pending at every barrier, so physical
batches get fuller as c grows while the metered per-caller accounting —
pinned by :func:`repro.sched.verify.verify_coalescing` before anything is
timed — never changes.

Reported per sweep point: physical and serial round totals (the
hardware-independent "speedup" is their ratio), amortized
rounds-per-query, and wall times.  The workload *asserts* that amortized
rounds-per-query strictly decreases as the caller count grows at fixed p
— that is the acceptance bar, not a hope.  A final sweep point replays
the largest workload against a warm :class:`repro.sched.ResultMemo` and
reports its hit rate and round cost (zero).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..congest import topologies
from ..congest.network import Network
from ..core.framework import DistributedInput, FrameworkConfig, run_framework
from ..core.operation import Operation
from ..core.semigroup import sum_semigroup
from ..sched import CoalescingScheduler, verify_coalescing
from .harness import WorkloadResult, measure


def _make_case(rows: int, cols: int, k: int) -> Tuple[Network, FrameworkConfig]:
    net = topologies.grid(rows, cols)
    rnd = random.Random(11)
    vectors = {
        v: [rnd.randint(0, 7) for _ in range(k)] for v in net.nodes()
    }
    di = DistributedInput(vectors=vectors, semigroup=sum_semigroup(8 * net.n))
    return net, FrameworkConfig(parallelism=1, dist_input=di, seed=4, leader=0)


def _burst_workload(
    callers: int, bursts: int, subs_per_burst: int, sub_size: int, k: int
) -> List[List[Tuple[str, List[int], str]]]:
    """Per-burst arrival lists of (caller, indices, label) submissions."""
    out = []
    for r in range(bursts):
        arrivals = []
        for c in range(callers):
            for s in range(subs_per_burst):
                base = (c * 131 + r * 17 + s * 7) % k
                indices = [(base + j * 3) % k for j in range(sub_size)]
                arrivals.append((f"caller{c}", indices, f"burst{r}"))
        out.append(arrivals)
    return out


def _run_coalesced(
    net: Network,
    cfg: FrameworkConfig,
    bursts: List[List[Tuple[str, List[int], str]]],
    memo=False,
) -> CoalescingScheduler:
    """Burst semantics: all callers submit, then every ticket is redeemed."""
    sched = CoalescingScheduler(net, cfg, memo=memo)
    for arrivals in bursts:
        tickets = [
            sched.submit(Operation.query(caller, indices, label=label))
            for caller, indices, label in arrivals
        ]
        for ticket in tickets:
            sched.result(ticket)
    return sched


def _run_serial(
    net: Network,
    cfg: FrameworkConfig,
    bursts: List[List[Tuple[str, List[int], str]]],
) -> int:
    """Every caller on its own oracle; returns summed non-setup rounds."""
    by_caller: Dict[str, List[Tuple[List[int], str]]] = {}
    for arrivals in bursts:
        for caller, indices, label in arrivals:
            by_caller.setdefault(caller, []).append((indices, label))
    total = 0
    for items in by_caller.values():
        def algorithm(oracle, _rng, items=items):
            for indices, label in items:
                oracle.query_batch(indices, label=label)

        run = run_framework(net, algorithm, config=cfg)
        total += sum(
            rounds for phase, rounds in run.rounds.by_phase().items()
            if not phase.startswith("setup")
        )
    return total


def sched_coalescing_workload(quick: bool = False) -> WorkloadResult:
    """Amortized rounds-per-query vs concurrent caller count at fixed p."""
    if quick:
        rows, cols, k, p = 4, 4, 64, 16
        caller_counts, bursts_n, subs, size = [1, 2, 4], 2, 2, 2
    else:
        rows, cols, k, p = 5, 5, 128, 64
        caller_counts, bursts_n, subs, size = [1, 2, 4, 8], 3, 2, 3

    net, base = _make_case(rows, cols, k)
    cfg = base.replace(parallelism=p)

    result = WorkloadResult(
        name="sched_coalescing",
        description=(
            "synchronous callers submitting under-filled query bursts "
            "against one shared oracle: private run_framework per caller "
            "(serial) vs the repro.sched coalescing scheduler; speedup is "
            "the hardware-independent serial/coalesced round ratio "
            "(bit-identical outputs and exact per-caller ledgers asserted "
            "before timing)"
        ),
    )

    amortized_trace: List[float] = []
    for callers in caller_counts:
        bursts = _burst_workload(callers, bursts_n, subs, size, k)
        flat = [item for arrivals in bursts for item in arrivals]

        verdict = verify_coalescing(net, cfg, flat)
        if not verdict.identical:
            raise AssertionError(
                f"coalescing equivalence broken at callers={callers}: "
                f"{verdict.detail}"
            )

        sched = _run_coalesced(net, cfg, bursts)
        report = sched.report()
        serial_rounds = _run_serial(net, cfg, bursts)
        amortized = report.amortized_rounds_per_query
        amortized_trace.append(amortized)

        t_serial = measure(lambda: _run_serial(net, cfg, bursts), reps=3)
        t_coal = measure(lambda: _run_coalesced(net, cfg, bursts), reps=3)
        result.sweep.append({
            "callers": callers,
            "p": p,
            "queries": report.total_queries,
            "submissions": report.submissions,
            "physical_batches": report.physical_batches,
            "serial_rounds": serial_rounds,
            "coalesced_rounds": report.physical_query_rounds,
            "serial_rounds_per_query": serial_rounds / report.total_queries,
            "amortized_rounds_per_query": amortized,
            "round_saving": 1.0 - report.physical_query_rounds / serial_rounds,
            "serial_s": t_serial,
            "coalesced_s": t_coal,
            "speedup": serial_rounds / report.physical_query_rounds,
        })

    for prev, cur in zip(amortized_trace, amortized_trace[1:]):
        if not cur < prev:
            raise AssertionError(
                f"amortized rounds-per-query must strictly decrease with "
                f"caller count at fixed p={p}, got {amortized_trace}"
            )

    # Memo replay: the same content-addressed submissions answered twice.
    callers = caller_counts[-1]
    bursts = _burst_workload(callers, bursts_n, subs, size, k)
    warm = _run_coalesced(net, cfg, bursts, memo=True)
    replay = CoalescingScheduler(net, cfg, memo=warm.memo)
    tickets = [
        replay.submit(Operation.query(caller, indices, label=label))
        for arrivals in bursts for caller, indices, label in arrivals
    ]
    replay.drain()
    for ticket, (_, indices, _label) in zip(
        tickets, (item for arrivals in bursts for item in arrivals)
    ):
        sub_values = replay.result(ticket)
        if len(sub_values) != len(indices):
            raise AssertionError("memo replay returned a short submission")
    replay_report = replay.report()
    if replay_report.physical_query_rounds != 0:
        raise AssertionError(
            f"memo replay paid {replay_report.physical_query_rounds} rounds"
        )
    result.sweep.append({
        "callers": callers,
        "p": p,
        "queries": replay_report.total_queries,
        "memo_hits": replay_report.memo_hits,
        "memo_misses": replay_report.memo_misses,
        "memo_hit_rate": warm.memo.hit_rate,
        "coalesced_rounds": replay_report.physical_query_rounds,
        "amortized_rounds_per_query":
            replay_report.amortized_rounds_per_query,
    })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    wl = sched_coalescing_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x")
