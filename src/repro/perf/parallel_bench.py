"""Parallel sweep executor speedup on the quick verification sweep.

The workload ``python -m repro bench --workload parallel`` guards: fan
the quick-mode verification sweep across worker processes and compare
wall time against the serial loop.  Before timing, the serial and
parallel verdict lists are asserted identical — the executor's hard
contract — so the benchmark doubles as a cross-process determinism
smoke test.

The speedup ceiling is min(worker count, available cores, critical
path): the sweep cannot beat its longest single experiment (E10
dominates the full quick sweep), and CPU-bound workers cannot exceed
the host's core count — on a 1-CPU box the honest answer is ~1.0x, so
every sweep entry records ``cpus`` and the smoke test gates the >1.5x
jobs=4 bar on having the cores to clear it.  The ``fanout`` entries are
the hardware-independent complement: sleep-based tasks measure the
executor's *concurrency* (dispatch + collection overhead) without
competing for cores, so they prove the pool genuinely overlaps tasks
even where a CPU-bound speedup is physically impossible.
"""

from __future__ import annotations

import os
import time
from typing import List

from .harness import WorkloadResult, measure

#: Cheap experiments for --quick mode (a correctness smoke, not a perf
#: claim: tasks this short are dominated by process fan-out overhead).
_QUICK_TARGETS = ["E1", "E4", "E13", "E15", "E16", "E17"]


def _verdict_tuples(verdicts) -> List[tuple]:
    return [(v.experiment, v.passed, v.detail) for v in verdicts]


def _cpus() -> int:
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _nap(seconds: float) -> float:
    """Module-level sleep task (workers need a picklable callable)."""
    time.sleep(seconds)
    return seconds


def _fanout_entry(jobs: int, nap_s: float = 0.2) -> dict:
    """Concurrency probe: ``jobs`` sleep tasks should take ~one nap.

    Sleeps do not compete for cores, so wall time near ``nap_s`` (vs the
    serial ``jobs * nap_s``) demonstrates real task overlap plus the
    executor's full dispatch/collect overhead, on any hardware.  The
    ratio is reported as ``fanout_speedup`` (not ``speedup``) so the
    workload's ``best_speedup`` reflects only genuine CPU-bound wins.
    """
    from ..parallel import Task, run_parallel

    tasks = [
        Task(key=f"nap{i}", fn=_nap, kwargs={"seconds": nap_s})
        for i in range(jobs)
    ]
    start = time.perf_counter()
    run_parallel(tasks, jobs=jobs)
    elapsed = time.perf_counter() - start
    return {
        "fanout_tasks": jobs,
        "jobs": jobs,
        "nap_s": nap_s,
        "wall_s": elapsed,
        "fanout_speedup": (jobs * nap_s) / elapsed,
    }


def parallel_verify_workload(quick: bool = False) -> WorkloadResult:
    """Time serial vs parallel ``verify_all`` on the quick-mode sweep."""
    from ..experiments import ALL_EXPERIMENTS
    from ..experiments.runner import RunRequest, verify_all

    targets = _QUICK_TARGETS if quick else list(ALL_EXPERIMENTS)
    job_counts = [2] if quick else [2, 4]
    request = RunRequest(experiments=tuple(targets), quick=True)

    result = WorkloadResult(
        name="parallel_verify",
        description=(
            "quick-mode verification sweep, serial vs the repro.parallel "
            "process-pool executor (identical verdicts asserted before "
            "timing)"
        ),
    )

    serial = verify_all(request)
    for jobs in job_counts:
        parallel = verify_all(request.replace(jobs=jobs))
        if _verdict_tuples(serial) != _verdict_tuples(parallel):
            raise AssertionError(
                f"parallel verdicts diverge from serial at jobs={jobs}: "
                f"{_verdict_tuples(parallel)} vs {_verdict_tuples(serial)}"
            )
    t_serial = measure(
        lambda: verify_all(request), reps=1, warmup=0
    )
    cpus = _cpus()
    for jobs in job_counts:
        t_parallel = measure(
            lambda jobs=jobs: verify_all(request.replace(jobs=jobs)),
            reps=1, warmup=0,
        )
        result.sweep.append({
            "experiments": len(targets),
            "jobs": jobs,
            "cpus": cpus,
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "speedup": t_serial / t_parallel,
        })
    for jobs in job_counts:
        result.sweep.append(_fanout_entry(jobs))
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    start = time.perf_counter()
    wl = parallel_verify_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x "
          f"({time.perf_counter() - start:.1f}s total)")
