"""Statevector gate kernel throughput: fast paths vs the generic route.

The timed circuit is a standard single-qubit mix (H, X, Z, S, T — the
gates the paper's algorithms are built from) swept across every qubit of
an n-qubit state, plus a controlled-gate sweep.  Kernel outputs are
checked against :meth:`Statevector.apply_generic` before timing.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..quantum.statevector import Statevector, uniform_superposition
from .harness import WorkloadResult, measure

_H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Z = np.diag([1, -1]).astype(np.complex128)
_S = np.diag([1, 1j]).astype(np.complex128)
_T = np.diag([1, np.exp(1j * np.pi / 4)]).astype(np.complex128)

GATE_MIX = [("H", _H), ("X", _X), ("Z", _Z), ("S", _S), ("T", _T)]


def _verify_kernels(num_qubits: int, atol: float = 1e-12) -> None:
    rng = np.random.default_rng(11)
    vec = rng.normal(size=1 << num_qubits) + 1j * rng.normal(
        size=1 << num_qubits
    )
    vec /= np.linalg.norm(vec)
    fast, ref = Statevector(num_qubits, vec), Statevector(num_qubits, vec)
    for _, gate in GATE_MIX:
        for q in range(num_qubits):
            fast.apply(gate, [q])
            ref.apply_generic(gate, [q])
    err = float(np.abs(fast.data - ref.data).max())
    if err > atol:
        raise AssertionError(f"kernel mismatch: max error {err:g}")


def _mix_sweep(sv: Statevector, use_fast: bool) -> None:
    apply = sv.apply if use_fast else sv.apply_generic
    for _, gate in GATE_MIX:
        for q in range(sv.num_qubits):
            apply(gate, [q])


def _controlled_sweep(sv: Statevector, use_fast: bool) -> None:
    n = sv.num_qubits
    if use_fast:
        for q in range(1, n):
            sv.apply_controlled(_X, [0], [q])
    else:
        cx = np.eye(4, dtype=np.complex128)
        cx[2:, 2:] = _X
        for q in range(1, n):
            sv.apply_generic(cx, [0, q])


def gate_throughput_workload(quick: bool = False) -> WorkloadResult:
    """Time dispatched gate kernels against the generic moveaxis path."""
    result = WorkloadResult(
        name="gate_throughput",
        description=(
            "H/X/Z/S/T single-qubit mix swept over every qubit, plus a "
            "CNOT fan-out; per-gate wall time of the dispatched kernels "
            "vs the generic moveaxis path (equivalence checked to 1e-12)"
        ),
    )
    sizes: List[int] = [8, 10] if quick else [14, 15, 16]
    _verify_kernels(6)
    for n in sizes:
        sv = uniform_superposition(n)
        gates_per_sweep = len(GATE_MIX) * n
        t_fast = measure(lambda sv=sv: _mix_sweep(sv, True), reps=3)
        t_generic = measure(lambda sv=sv: _mix_sweep(sv, False), reps=3)
        tc_fast = measure(lambda sv=sv: _controlled_sweep(sv, True), reps=3)
        tc_generic = measure(
            lambda sv=sv: _controlled_sweep(sv, False), reps=3
        )
        result.sweep.append({
            "workload": "mix_1q",
            "num_qubits": n,
            "gates_per_sweep": gates_per_sweep,
            "fast_s_per_gate": t_fast / gates_per_sweep,
            "generic_s_per_gate": t_generic / gates_per_sweep,
            "fast_gates_per_s": gates_per_sweep / t_fast,
            "generic_gates_per_s": gates_per_sweep / t_generic,
            "speedup": t_generic / t_fast,
        })
        result.sweep.append({
            "workload": "cnot_fanout",
            "num_qubits": n,
            "gates_per_sweep": n - 1,
            "fast_s_per_gate": tc_fast / (n - 1),
            "generic_s_per_gate": tc_generic / (n - 1),
            "fast_gates_per_s": (n - 1) / tc_fast,
            "generic_gates_per_s": (n - 1) / tc_generic,
            "speedup": tc_generic / tc_fast,
        })
    return result


if __name__ == "__main__":  # pragma: no cover - manual convenience
    wl = gate_throughput_workload()
    for entry in wl.sweep:
        print(entry)
    print(f"best speedup {wl.best_speedup:.2f}x")
