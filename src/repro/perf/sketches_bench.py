"""Amplitude-sketch benchmarks (PR 10): ops/sec under mixed streams.

``python -m repro bench --workload sketches`` writes ``BENCH_PR10.json``
with four sections in one workload sweep:

* **fidelity gate** — exact vs emulated backends on overlapping widths:
  raw overlaps within 1e-9 and decision-level outputs bit-identical,
  asserted *before* any timing (the bench refuses to time a wrong
  emulation), plus the measured emulated-over-exact speedup at m=10;
* **mix sensitivity** — sustained operations/sec through a bare
  :class:`~repro.sched.sketch.SketchScheduler` at insert fractions
  0.1 / 0.5 / 0.9: the write fraction controls how often the memo is
  invalidated, so throughput vs mix is the price of the PR-10
  correctness fix (writes must purge the content-addressed memo);
* **serve path** — one :func:`~repro.serve.session.run_sketch_session`
  point: the full daemon (admission → stride fairness → pinned sketch
  lane → drain) must complete every offered operation with zero
  failures and a *positive* memo-invalidation count (the invariant
  CI's ``sketches-smoke`` job also asserts);
* **E23 tradeoff** — the quick space–accuracy ladder embedded so the
  report and EXPERIMENTS.md can never disagree about Theorem 1.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..apps.sketches import AmplitudeSketch, QCount, SketchSpec
from ..core.operation import Operation
from ..sched.sketch import SketchScheduler
from .harness import WorkloadResult, measure


def _fidelity_gate(result: WorkloadResult) -> None:
    """Assert cross-backend identity, then time the two backends."""
    for m in (8, 10):
        pair = [
            QCount(m=m, k=3, seed=0, backend=backend)
            for backend in ("exact", "emulated")
        ]
        keys = [f"key-{i}" for i in range(3)]
        probes = keys + [f"probe-{i}" for i in range(32)]
        for sk in pair:
            for x in keys:
                sk.insert(x)
        ex, em = pair
        worst = 0.0
        for y in probes:
            worst = max(worst, abs(ex.query(y) - em.query(y)))
            if ex.contains(y) != em.contains(y):
                raise AssertionError(
                    f"m={m}: membership verdict diverged on {y!r}"
                )
            if ex.estimate(y) != em.estimate(y):
                raise AssertionError(
                    f"m={m}: count estimate diverged on {y!r}"
                )
        if worst > 1e-9:
            raise AssertionError(
                f"m={m}: exact/emulated overlap gap {worst:.2e} > 1e-9"
            )
        result.sweep.append({
            "section": "fidelity_gate",
            "m": m,
            "max_overlap_delta": worst,
            "decisions_identical": True,
        })

    # The emulation exists because the statevector costs 2^m; measure
    # what it buys at the largest overlapping width.
    def run_backend(backend: str) -> None:
        sk = AmplitudeSketch(
            SketchSpec(family="qcount", m=10, k=3, seed=0, backend=backend)
        )
        for i in range(64):
            sk.insert(f"key-{i % 16}")
        for i in range(64):
            sk.query(f"key-{i % 24}")

    t_exact = measure(lambda: run_backend("exact"))
    t_emulated = measure(lambda: run_backend("emulated"))
    result.sweep.append({
        "section": "fidelity_gate",
        "m": 10,
        "exact_s": t_exact,
        "emulated_s": t_emulated,
        "speedup": t_exact / t_emulated,
    })


def _mix_stream(
    fraction: float, ops: int, universe: int
) -> List[Operation]:
    """A deterministic mixed stream with exactly the requested fraction."""
    stream: List[Operation] = []
    acc = 0.0
    for i in range(ops):
        acc += fraction
        items = (f"key-{(i * 7) % universe}", f"key-{(i * 13) % universe}")
        if acc >= 1.0:
            acc -= 1.0
            stream.append(Operation.insert(f"tenant{i % 4}", items))
        else:
            stream.append(Operation.sketch_query(f"tenant{i % 4}", items))
    return stream


def _mix_sensitivity(result: WorkloadResult, quick: bool) -> None:
    ops = 2_000 if quick else 10_000
    universe = 64
    for fraction in (0.1, 0.5, 0.9):
        stream = _mix_stream(fraction, ops, universe)
        sketch = AmplitudeSketch(
            SketchSpec(family="qcount", m=64, k=3, seed=0,
                       backend="emulated")
        )
        sched = SketchScheduler(sketch, parallelism=64, memo=True)
        start = time.perf_counter()
        tickets = [sched.submit(op) for op in stream]
        sched.drain()
        wall = time.perf_counter() - start
        for ticket in tickets:
            if not sched.done(ticket):
                raise AssertionError("drained scheduler left work undone")
        report = sched.report()
        result.sweep.append({
            "section": "mix_sensitivity",
            "insert_fraction": fraction,
            "ops": ops,
            "ops_per_sec": ops / wall,
            "items_per_sec": report.total_ops / wall,
            "memo_hits": report.memo_hits,
            "memo_misses": report.memo_misses,
            "memo_invalidations": report.memo_invalidations,
        })


def _serve_point(result: WorkloadResult, quick: bool) -> None:
    from ..serve.session import run_sketch_session

    clients = 400 if quick else 2_000
    out = run_sketch_session(
        clients=clients, tenants=4, rate_hz=8000.0, insert_fraction=0.5,
        m=64, k=3, parallelism=64,
    )
    load = out["load"]
    if load["completed"] != clients or load["failed"]:
        raise AssertionError(
            f"serve path dropped work: completed={load['completed']}/"
            f"{clients}, failed={load['failed']}"
        )
    if out["lane"]["memo_invalidations"] <= 0:
        raise AssertionError(
            "mixed stream produced zero memo invalidations — the "
            "write-path correctness fix is not engaged"
        )
    result.sweep.append({
        "section": "serve",
        "clients": clients,
        "ops_per_sec": load["qps"],
        "p50_ms": load["p50_ms"],
        "p99_ms": load["p99_ms"],
        "memo_invalidations": out["lane"]["memo_invalidations"],
        "sketch_backend": out["sketch"]["backend"],
    })


def _tradeoff(result: WorkloadResult) -> None:
    from ..experiments import e23_sketches

    e23 = e23_sketches.run(quick=True, seed=0)
    if not (e23.tradeoff_holds and e23.backend_agreement):
        raise AssertionError(
            f"E23 regressed: tradeoff={e23.tradeoff_holds}, "
            f"agreement={e23.backend_agreement}"
        )
    result.sweep.append({
        "section": "e23",
        "alphas": {str(m): a for m, a in e23.alphas.items()},
        "alpha_non_increasing": e23.alpha_non_increasing,
        "alpha_shrinks": e23.alpha_shrinks,
        "max_backend_delta": e23.max_backend_delta,
    })


def sketches_workload(quick: bool = False) -> WorkloadResult:
    """Certify and time the amplitude-sketch serving stack."""
    result = WorkloadResult(
        name="sketches",
        description=(
            "PR 10 amplitude sketches: exact/emulated fidelity gate "
            "(decision bit-identity asserted before timing), sustained "
            "ops/sec vs insert:query mix through the FIFO sketch "
            "scheduler, one full daemon serving point, and the E23 "
            "Theorem 1 space-accuracy ladder"
        ),
    )
    _fidelity_gate(result)
    _mix_sensitivity(result, quick)
    _serve_point(result, quick)
    _tradeoff(result)
    return result
