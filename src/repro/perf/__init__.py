"""Micro-benchmarks for the repository's hot paths.

Three workload families, matching the PR-2 optimization targets:

* :mod:`repro.perf.engine_bench` — CONGEST engine round throughput
  (active-set vs dense scheduling on sparse flooding),
* :mod:`repro.perf.gate_bench` — statevector gate kernels (fast vs the
  generic moveaxis path),
* :mod:`repro.perf.framework_bench` — repeated engine-mode
  :func:`repro.core.framework.run_framework` calls (PreparedNetwork cache
  warm vs cold),
* :mod:`repro.perf.obs_bench` — observability-spine overhead (null
  recorder vs a dense metrics sink on engine flooding; enforces the
  <5% disabled-path budget),
* :mod:`repro.perf.parallel_bench` — the :mod:`repro.parallel` sweep
  executor (serial vs multi-process ``verify_all`` on the quick
  verification sweep; asserts verdict identity before timing),
* :mod:`repro.perf.sched_bench` — the :mod:`repro.sched` coalescing
  scheduler (amortized rounds-per-query vs concurrent caller count at
  fixed p; asserts bit-identical-to-serial equivalence before timing),
* :mod:`repro.perf.serve_bench` — the :mod:`repro.serve` daemon under
  open-loop Poisson load (sustained queries/sec and p50/p99 latency;
  asserts amortized rounds-per-query is no worse than the synchronous
  scheduler at equal width).  ``bench --workload serve`` writes
  ``BENCH_PR6.json``.
* :mod:`repro.perf.models_bench` — the PR-8 communication-model layer:
  closed-form :class:`~repro.congest.network.CompleteNetwork`
  build/fingerprint/CSR vs the historical nx-built K_n (identity
  asserted before timing), plus the E20 diameter-duel and E21
  CONGEST-CLIQUE APSP exponent fits.  ``bench --workload models``
  writes ``BENCH_PR8.json``.
* :mod:`repro.perf.scenarios_bench` — the PR-9 scenario matrix:
  fault-model reuse determinism (bind/run/bind/run verdict-stream
  identity across every :class:`~repro.faults.ChannelFaultModel`), the
  link-fidelity re-amplification bill, and the E22 quantum-vs-classical
  wall-clock crossover verdicts.  Assertion-only; ``bench --workload
  scenarios`` writes ``BENCH_PR9.json``.
* :mod:`repro.perf.sketches_bench` — the PR-10 amplitude-sketch stack:
  exact-vs-emulated decision bit-identity asserted before timing, the
  emulated-over-exact speedup at the largest overlapping width,
  sustained ops/sec vs insert:query mix through the FIFO sketch
  scheduler (the memo-invalidation price), one full daemon serving
  point, and the E23 Theorem 1 ladder.  ``bench --workload sketches``
  writes ``BENCH_PR10.json``.
* :mod:`repro.perf.scaling_bench` — the PR-7 scaling ceiling: largest n
  per topology family that a single vectorized engine run sustains
  within a wall-clock budget, with points at n ≥ 10^5 fanned across
  :mod:`repro.parallel` workers.  Assertion-only (no speedup race);
  ``bench --workload scaling_ceiling`` writes ``BENCH_PR7.json``.
  (The ``engine`` workload itself gained a vectorized column in PR 7:
  its headline ``speedup`` is now vectorized-over-dense.)

``python -m repro bench`` runs all of them and writes ``BENCH_PR2.json``
(schema documented in ``benchmarks/perf/README.md``);
:mod:`repro.perf.compare` diffs two such reports.

Every workload *verifies* that the fast and reference paths produce
identical results before timing them, so the benchmarks double as
correctness smoke tests (CI runs them in ``--quick`` mode).
"""

from .engine_bench import engine_flooding_workload
from .framework_bench import framework_repeat_workload
from .gate_bench import gate_throughput_workload
from .harness import (
    SPEEDUP_TARGET,
    WorkloadResult,
    build_report,
    measure,
    write_report,
)
from .models_bench import models_workload
from .obs_bench import OVERHEAD_BUDGET, obs_overhead_workload
from .parallel_bench import parallel_verify_workload
from .scaling_bench import scaling_ceiling_workload
from .scenarios_bench import scenarios_workload
from .sched_bench import sched_coalescing_workload
from .serve_bench import serve_daemon_workload
from .sketches_bench import sketches_workload

WORKLOADS = {
    "engine": engine_flooding_workload,
    # The workload's report name; accepted as a CLI alias for "engine".
    "engine_flooding": engine_flooding_workload,
    "gates": gate_throughput_workload,
    "framework": framework_repeat_workload,
    "models": models_workload,
    "obs": obs_overhead_workload,
    "parallel": parallel_verify_workload,
    "sched": sched_coalescing_workload,
    "serve": serve_daemon_workload,
    "scaling_ceiling": scaling_ceiling_workload,
    "scenarios": scenarios_workload,
    "sketches": sketches_workload,
}


#: What a bare ``bench`` runs: one entry per workload (no aliases), and
#: not ``scaling_ceiling`` — at full scale it builds 10^5..2·10^5-node
#: graphs and ships its own report (BENCH_PR7.json); run it explicitly
#: with ``--workload scaling_ceiling``.  ``scenarios`` likewise ships
#: its own report (BENCH_PR9.json) and re-runs E22 end to end, so it
#: too is opt-in via ``--workload scenarios``; ``sketches`` ships
#: BENCH_PR10.json and is opt-in for the same reason.
DEFAULT_WORKLOADS = [
    "engine", "gates", "framework", "obs", "parallel", "sched", "serve",
    "models",
]


def run_all(quick: bool = False, workloads=None) -> dict:
    """Run the selected workloads (defaults in DEFAULT_WORKLOADS)."""
    selected = workloads or list(DEFAULT_WORKLOADS)
    results = []
    for name in selected:
        if name not in WORKLOADS:
            raise KeyError(
                f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
            )
        results.append(WORKLOADS[name](quick=quick))
    return build_report(results, quick=quick)


__all__ = [
    "DEFAULT_WORKLOADS",
    "OVERHEAD_BUDGET",
    "SPEEDUP_TARGET",
    "WORKLOADS",
    "WorkloadResult",
    "build_report",
    "engine_flooding_workload",
    "framework_repeat_workload",
    "gate_throughput_workload",
    "measure",
    "obs_overhead_workload",
    "parallel_verify_workload",
    "run_all",
    "scaling_ceiling_workload",
    "scenarios_workload",
    "sched_coalescing_workload",
    "serve_daemon_workload",
    "sketches_workload",
    "write_report",
]
