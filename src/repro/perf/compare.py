"""Compare two BENCH_PR2.json reports (e.g. before/after a change).

Usage::

    python -m repro.perf.compare OLD.json NEW.json

Prints per-workload best-speedup and per-sweep-point wall-time deltas.
Sweep points are matched on their identifying keys (everything that is
not a measured time/rate), so reordered sweeps still line up.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Tuple

_MEASURED_KEYS = ("_s", "_per_s", "_s_per_gate", "speedup")


def _is_measured(key: str) -> bool:
    return key == "speedup" or any(key.endswith(s) for s in _MEASURED_KEYS)


def _identity(entry: Dict[str, Any]) -> Tuple:
    return tuple(sorted(
        (k, str(v)) for k, v in entry.items() if not _is_measured(k)
    ))


def _load(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        report = json.load(fh)
    if "workloads" not in report:
        raise ValueError(f"{path} is not a repro-bench report")
    return report


def compare_reports(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    """Render a human-readable diff of two ``repro-bench/1`` reports.

    Sweep entries are matched on their non-measured keys (topology, size,
    workload label); measured timings are shown side by side with the
    old/new ratio.
    """
    lines = []
    names = sorted(set(old["workloads"]) | set(new["workloads"]))
    for name in names:
        wl_old = old["workloads"].get(name)
        wl_new = new["workloads"].get(name)
        if wl_old is None or wl_new is None:
            lines.append(f"{name}: only in {'new' if wl_old is None else 'old'}")
            continue
        if wl_old.get("assertion_only") and wl_new.get("assertion_only"):
            lines.append(f"{name}: assertion-only workload")
        else:
            bo, bn = wl_old.get("best_speedup"), wl_new.get("best_speedup")
            bo_s = f"{bo:.2f}x" if bo is not None else "n/a"
            bn_s = f"{bn:.2f}x" if bn is not None else "n/a"
            lines.append(f"{name}: best speedup {bo_s} -> {bn_s}")
        old_by_id = {_identity(e): e for e in wl_old["sweep"]}
        for entry in wl_new["sweep"]:
            match = old_by_id.get(_identity(entry))
            if match is None:
                continue
            for key in entry:
                # Wall-time keys only: `_per_s` rates also end in "_s"
                # but are not millisecond quantities.
                if (
                    not key.endswith("_s")
                    or key.endswith("_per_s")
                    or key not in match
                ):
                    continue
                before, after = match[key], entry[key]
                ident = {k: v for k, v in entry.items() if not _is_measured(k)}
                # Reports serialize non-finite measurements as null
                # (write_report forbids Infinity/NaN); a null on either
                # side means "no comparable timing", not a crash.
                if not isinstance(before, (int, float)) or not isinstance(
                    after, (int, float)
                ):
                    lines.append(
                        f"  {ident}: {key} not comparable "
                        f"({before!r} -> {after!r})"
                    )
                    continue
                ratio = before / after if after else float("inf")
                lines.append(
                    f"  {ident}: {key} {before * 1e3:.1f}ms -> "
                    f"{after * 1e3:.1f}ms ({ratio:.2f}x)"
                )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point: print the diff of two bench report files."""
    parser = argparse.ArgumentParser(
        description="diff two repro-bench JSON reports"
    )
    parser.add_argument("old", help="baseline report path")
    parser.add_argument("new", help="comparison report path")
    args = parser.parse_args(argv)
    print(compare_reports(_load(args.old), _load(args.new)))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
