"""Sketch lanes for the serving stack: FIFO operation scheduling + memo.

The :class:`~repro.sched.scheduler.CoalescingScheduler` packs *read*
queries against an immutable oracle; amplitude sketches
(:mod:`repro.apps.sketches`) add *writes* to the stream, which changes
the scheduling problem in two ways:

* **Order matters.**  A query submitted after an insert must observe it,
  so operations execute strictly FIFO — no reordering reads around
  writes (coalescing read-only batches freely was only sound because
  every read commuted with every other).
* **The memo needs invalidation.**  A sketch's *identity* fingerprint
  (family, m, k, θ, seed) is deliberately stable across inserts — it
  names the lane, not the content — so the content-addressed
  :class:`~repro.sched.memo.ResultMemo` can no longer rely on mutated
  content producing fresh addresses.  Every insert therefore calls
  :meth:`~repro.sched.memo.ResultMemo.invalidate_fingerprint` *before*
  the write is acknowledged: the invariant (pinned in
  ``tests/sched/test_sketch_sched.py``) is that no query can ever be
  served a pre-insert overlap.  Queries are memoized under
  ``(fingerprint × item-token tuple)`` — :func:`~repro.apps.sketches.
  item_token` gives the integer addresses — and the fast path at submit
  time only fires when *zero writes are pending* (a queued insert will
  execute before the query, so the memo's present answer would be the
  query's stale past).

The scheduler duck-types the daemon-facing surface of
``CoalescingScheduler`` (``submit``/``done``/``result``/
``execute_batch_steps``/``pending_queries``/``rounds``/``report``), so
:class:`~repro.serve.daemon.QueryService` drives sketch lanes and oracle
lanes through one worker loop.  Sketch operations are *local* phase
rotations — O(k) gates, no distribute/convergecast — so the round ledger
stays at zero; wall-clock throughput (ops/sec, BENCH_PR10) is the
relevant cost axis, not CONGEST rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..apps.sketches import AmplitudeSketch, item_token
from ..core.cost import RoundLedger
from ..core.operation import Operation
from ..obs.recorder import Recorder, current_recorder
from .memo import ResultMemo
from .scheduler import Ticket

__all__ = ["SketchCallerAccount", "SketchReport", "SketchScheduler"]


@dataclass
class SketchCallerAccount:
    """Per-caller operation accounting for one sketch lane."""

    name: str
    submissions: int = 0
    insert_items: int = 0
    query_items: int = 0
    memo_hits: int = 0


@dataclass
class SketchReport:
    """Aggregate accounting snapshot of one sketch scheduler."""

    callers: int
    submissions: int
    total_ops: int
    insert_items: int
    query_items: int
    physical_batches: int
    memo_hits: int
    memo_misses: int
    memo_invalidations: int
    attributed_rounds: int  # always 0: sketch ops are round-free


class _SketchSubmission:
    """One in-flight operation and its completion state."""

    __slots__ = ("ticket", "op", "values", "done")

    def __init__(self, ticket: Ticket, op: Operation):
        self.ticket = ticket
        self.op = op
        self.values: List[Any] = []
        self.done = False


class SketchScheduler:
    """Serves one shared :class:`~repro.apps.sketches.AmplitudeSketch`.

    Args:
        sketch: the lane's sketch (authoritative state — callers share it).
        parallelism: max payload items packed into one physical batch;
            the daemon's fill threshold, mirroring the oracle lanes'
            batch width p.
        memo: ``True`` (default) builds a private ResultMemo for query
            overlaps; pass a ResultMemo to share one, ``False`` to
            disable.  Inserts invalidate the sketch's fingerprint.
        recorder: observability bus; memo hits and invalidations emit
            ``sketch`` events (the sketch itself emits the physical
            insert/query events).
    """

    def __init__(
        self,
        sketch: AmplitudeSketch,
        *,
        parallelism: int = 64,
        memo: Any = True,
        recorder: Optional[Recorder] = None,
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.sketch = sketch
        self._parallelism = parallelism
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        self._rounds = RoundLedger(recorder=self._recorder)
        if memo is False or memo is None:
            self._memo: Optional[ResultMemo] = None
        else:
            self._memo = (
                memo if isinstance(memo, ResultMemo)
                else ResultMemo(recorder=self._recorder)
            )
        self._fingerprint = sketch.fingerprint
        self._queue: List[_SketchSubmission] = []
        self._pending_inserts = 0
        self._accounts: Dict[str, SketchCallerAccount] = {}
        self._by_ticket: Dict[int, _SketchSubmission] = {}
        self._next_ticket = 0
        self.physical_batches = 0
        self.memo_hits = 0
        self.memo_misses = 0

    # -- daemon-facing surface (duck-types CoalescingScheduler) ----------

    @property
    def parallelism(self) -> int:
        return self._parallelism

    @property
    def rounds(self) -> RoundLedger:
        return self._rounds

    @property
    def memo(self) -> Optional[ResultMemo]:
        return self._memo

    def account(self, caller: str) -> SketchCallerAccount:
        acct = self._accounts.get(caller)
        if acct is None:
            acct = SketchCallerAccount(name=caller)
            self._accounts[caller] = acct
        return acct

    def submit(self, operation: Operation) -> Ticket:
        """Enqueue one sketch operation (insert or item query), FIFO.

        Unlike the oracle scheduler there is no legacy positional form —
        sketch lanes were born after the :class:`~repro.core.operation.
        Operation` API and only speak it.
        """
        if not isinstance(operation, Operation):
            raise TypeError(
                "SketchScheduler.submit takes a repro.core.Operation "
                "(Operation.insert / Operation.sketch_query)"
            )
        if operation.indices:
            raise ValueError(
                "sketch lanes take item payloads; oracle index reads go "
                "to CoalescingScheduler"
            )
        acct = self.account(operation.caller)
        acct.submissions += 1
        ticket = Ticket(
            id=self._next_ticket, caller=operation.caller,
            size=operation.size,
        )
        self._next_ticket += 1
        sub = _SketchSubmission(ticket, operation)
        self._by_ticket[ticket.id] = sub

        if (
            not operation.is_write
            and self._pending_inserts == 0
            and self._memo is not None
        ):
            # Fast path is only sound with zero pending writes: a queued
            # insert executes before this query, so serving the memo's
            # *present* answer would hand the query its stale past.
            cached = self._try_memo(operation)
            if cached is not None:
                sub.values = cached
                sub.done = True
                acct.memo_hits += 1
                return ticket

        self._queue.append(sub)
        if operation.is_write:
            self._pending_inserts += 1
        return ticket

    def done(self, ticket: Ticket) -> bool:
        sub = self._by_ticket.get(ticket.id)
        if sub is None:
            raise KeyError(f"unknown ticket {ticket.id}")
        return sub.done

    def result(self, ticket: Ticket) -> List[Any]:
        """The operation's values (overlaps for queries, acks for inserts)."""
        sub = self._by_ticket.get(ticket.id)
        if sub is None:
            raise KeyError(f"unknown ticket {ticket.id}")
        while not sub.done:
            self._execute_batch()
        return list(sub.values)

    def flush(self) -> int:
        if not self._queue:
            return 0
        return self._execute_batch()

    def drain(self) -> None:
        while self._queue:
            self._execute_batch()

    @property
    def pending_queries(self) -> int:
        """Pending payload items (the daemon's fill/backpressure metric)."""
        return sum(s.op.size for s in self._queue)

    @property
    def pending_inserts(self) -> int:
        return self._pending_inserts

    def pack_would_be_empty(self) -> bool:
        return not self._queue

    def report(self) -> SketchReport:
        return SketchReport(
            callers=len(self._accounts),
            submissions=sum(a.submissions for a in self._accounts.values()),
            total_ops=sum(
                a.insert_items + a.query_items
                for a in self._accounts.values()
            ),
            insert_items=sum(
                a.insert_items for a in self._accounts.values()
            ),
            query_items=sum(a.query_items for a in self._accounts.values()),
            physical_batches=self.physical_batches,
            memo_hits=self.memo_hits,
            memo_misses=self.memo_misses,
            memo_invalidations=(
                self._memo.invalidations if self._memo is not None else 0
            ),
            attributed_rounds=0,
        )

    # -- internals -------------------------------------------------------

    def _try_memo(self, op: Operation) -> Optional[List[Any]]:
        """Memo lookup for a query op; counts the hit/miss and emits."""
        assert self._memo is not None
        tokens = [item_token(x) for x in op.items]
        cached = self._memo.lookup(self._fingerprint, tokens)
        if cached is None:
            self.memo_misses += 1
            return None
        self.memo_hits += 1
        if self._recorder.active:
            self._recorder.sketch(
                self.sketch.name, "query", len(tokens), memo="hit"
            )
        return cached

    def _apply(self, sub: _SketchSubmission) -> None:
        """Execute one operation against the sketch, memo-aware."""
        op = sub.op
        acct = self.account(op.caller)
        if op.is_write:
            for x in op.items:
                self.sketch.insert(x)
            acct.insert_items += len(op.items)
            self._pending_inserts -= 1
            if self._memo is not None:
                dropped = self._memo.invalidate_fingerprint(self._fingerprint)
                if dropped and self._recorder.active:
                    self._recorder.sketch(
                        self.sketch.name, "insert", dropped,
                        memo="invalidate",
                    )
            sub.values = [True] * len(op.items)
        else:
            # Execution-time memo check: every insert ahead of this
            # query has now been applied (FIFO), so the memo's answer —
            # stored by some query executed after the last write — is
            # the current truth.
            cached = (
                self._try_memo(op)
                if self._memo is not None and self._pending_inserts == 0
                else None
            )
            if cached is not None:
                sub.values = cached
                acct.memo_hits += 1
            else:
                sub.values = [self.sketch.query(y) for y in op.items]
                if self._memo is not None:
                    tokens = [item_token(x) for x in op.items]
                    self._memo.store(
                        self._fingerprint, tokens, sub.values
                    )
            acct.query_items += len(op.items)
        sub.done = True

    def _execute_batch(self) -> int:
        gen = self.execute_batch_steps()
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value

    def execute_batch_steps(self) -> Iterator[Any]:
        """Apply one FIFO batch of up to ``parallelism`` payload items.

        Whole operations only (a half-applied insert has no meaning),
        always at least one.  Declared a generator for interface parity
        with the oracle scheduler's stepwise batches; sketch operations
        are local and round-free, so it returns the batch size without
        ever yielding (exactly like an oracle lane in formula mode).
        """
        if not self._queue:
            return 0
        taken: List[_SketchSubmission] = []
        size = 0
        for sub in self._queue:
            if taken and size + sub.op.size > self._parallelism:
                break
            taken.append(sub)
            size += sub.op.size
        for sub in taken:
            self._apply(sub)
        self._queue = self._queue[len(taken):]
        self.physical_batches += 1
        return size
        yield  # pragma: no cover — generator marker, interface parity
