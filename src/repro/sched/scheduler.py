"""The query-batch coalescing scheduler (Theorem 8, amortized).

Theorem 8's cost model is batch-shaped: a ``(b, p)`` run pays
``O(b·(p/n + 1)·D)`` rounds *per batch*, regardless of whose queries
fill a batch.  Before this module, every caller of
:func:`~repro.core.framework.run_framework` paid its own
distribute/convergecast rounds even when many concurrent runs shared
one :class:`~repro.core.framework.PreparedNetwork` and submitted
under-filled batches.  The scheduler coalesces:

* **Callers submit query sets** (:meth:`CoalescingScheduler.submit`)
  against one shared oracle; each submission is metered on that
  *caller's* :class:`~repro.queries.ledger.QueryLedger` exactly as a
  serial run would meter it.
* **Fill-or-flush**: pending queries are packed FIFO into maximal
  physical batches of up to ``p`` indices.  A batch executes as soon as
  ``p`` queries are pending (*fill*), or when the round-budget deadline
  expires (*flush*): every pending submission carries the standalone
  round cost it would have paid executing immediately, and once the
  summed deferred rounds exceed ``deadline_rounds`` the oldest work is
  forced out — no caller's queries can be starved past the deadline by
  other callers' traffic.  ``deadline_rounds=0`` degenerates to serial
  per-submission execution (the equivalence baseline);
  ``deadline_rounds=None`` waits for fill or an explicit
  :meth:`flush`/:meth:`drain`.
* **One distribute/convergecast per physical batch** on the shared
  :class:`~repro.core.framework.CongestBatchOracle`; results are split
  back per caller in submission order.
* **Exact per-caller accounting**: the rounds each physical batch
  charges are attributed to its callers proportionally to their query
  counts, with largest-remainder rounding so the attributed shares sum
  *exactly* to the physically charged rounds — conservation is an
  invariant, not an approximation (see DESIGN.md §6f for the proof
  sketch, and :mod:`repro.sched.verify` for the bit-identical-to-serial
  pinning, same discipline as ``verify_parallel``).
* **Content-addressed memo** (:mod:`repro.sched.memo`): a submission
  whose (oracle fingerprint × sorted index tuple) was answered before is
  served in zero rounds; hits and misses flow through the observability
  spine as ``coalesce`` events.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..congest.network import Network
from ..core.cost import CostModel, RoundLedger
from ..core.framework import (
    CongestBatchOracle,
    FrameworkConfig,
    PreparedNetwork,
    build_oracle,
    setup_network,
)
from ..core.operation import Operation
from ..obs.recorder import Recorder, current_recorder
from ..queries.ledger import QueryLedger
from .memo import ResultMemo, oracle_fingerprint

__all__ = [
    "CallerAccount",
    "CallerOracle",
    "CoalescingScheduler",
    "SchedulerReport",
    "Ticket",
]


@dataclass(frozen=True)
class Ticket:
    """Handle for one submission; redeem with ``scheduler.result(ticket)``."""

    id: int
    caller: str
    size: int


@dataclass
class CallerAccount:
    """Per-caller accounting, kept exactly as a serial run would keep it.

    ``queries`` meters the caller's own submissions (one record per
    submission, the caller's batch sizes and labels — identical to the
    ledger a serial ``run_framework`` would produce for the same call
    sequence).  ``rounds`` accumulates the caller's attributed share of
    every physical batch it participated in.
    """

    name: str
    queries: QueryLedger
    rounds: RoundLedger
    submissions: int = 0
    memo_hits: int = 0

    @property
    def attributed_rounds(self) -> int:
        return self.rounds.total


@dataclass
class SchedulerReport:
    """Aggregate accounting snapshot of one scheduler."""

    callers: int
    submissions: int
    total_queries: int
    physical_batches: int
    physical_query_rounds: int
    setup_rounds: int
    memo_hits: int
    memo_misses: int
    memo_evictions: int
    attributed_rounds: int  # sum over callers; == physical_query_rounds

    @property
    def amortized_rounds_per_query(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.physical_query_rounds / self.total_queries


class _Submission:
    """One in-flight query set and its per-index completion state."""

    __slots__ = (
        "ticket", "caller", "indices", "label", "values", "remaining",
        "estimate", "cursor",
    )

    def __init__(self, ticket: Ticket, caller: str, indices: List[int],
                 label: str, estimate: int):
        self.ticket = ticket
        self.caller = caller
        self.indices = indices
        self.label = label
        self.values: List[Any] = [None] * len(indices)
        self.remaining = len(indices)
        self.estimate = estimate  # standalone rounds if executed alone
        self.cursor = 0  # next index position not yet packed into a batch

    @property
    def done(self) -> bool:
        return self.remaining == 0


def _proportional_shares(total: int, counts: Dict[str, int]) -> Dict[str, int]:
    """Split ``total`` proportionally to ``counts``, summing exactly.

    Largest-remainder (Hamilton) apportionment: every caller gets the
    floor of its proportional share, and the leftover units go to the
    largest fractional remainders, ties broken by caller name so the
    split is deterministic.  ``sum(shares) == total`` always.
    """
    weight = sum(counts.values())
    if weight == 0:
        raise ValueError("cannot attribute rounds to an empty batch")
    shares = {c: (total * n) // weight for c, n in counts.items()}
    leftover = total - sum(shares.values())
    if leftover:
        by_remainder = sorted(
            counts, key=lambda c: (-((total * counts[c]) % weight), c)
        )
        for c in by_remainder[:leftover]:
            shares[c] += 1
    return shares


class CoalescingScheduler:
    """Coalesces many callers' query sets onto one shared oracle.

    Args:
        network: the CONGEST network all callers share.
        config: a :class:`~repro.core.framework.FrameworkConfig`
            describing the shared oracle — parallelism p (the physical
            batch width), input (``dist_input`` or ``computer``/``k``),
            mode, seed, setup policy.  The same object a serial
            ``run_framework`` call would take.
        deadline_rounds: the fill-or-flush round budget.  ``None``
            (default) never force-flushes; ``0`` executes every
            submission immediately (serial behaviour); ``R > 0`` forces
            a flush as soon as the summed standalone round cost of
            pending submissions exceeds R.
        memo: ``True`` (default) builds a private
            :class:`~repro.sched.memo.ResultMemo`; pass a ResultMemo to
            share one across schedulers, or ``False`` to disable.
            Memoization is automatically disabled when the oracle
            content cannot be fingerprinted.
        recorder: observability bus (defaults to the ambient recorder);
            physical batches and memo hits emit ``coalesce`` events.
    """

    def __init__(
        self,
        network: Network,
        config: FrameworkConfig,
        *,
        deadline_rounds: Optional[int] = None,
        memo: Any = True,
        recorder: Optional[Recorder] = None,
        auto_flush: bool = True,
    ):
        if deadline_rounds is not None and deadline_rounds < 0:
            raise ValueError(
                f"deadline_rounds must be >= 0 or None, got {deadline_rounds}"
            )
        self.network = network
        self.config = config
        self.deadline_rounds = deadline_rounds
        #: With auto_flush off, ``submit`` only enqueues — execution is
        #: the owner's job via :meth:`flush` / :meth:`execute_batch_steps`.
        #: The serving daemon runs this way so a submission can never
        #: block the event loop on a synchronous batch.
        self.auto_flush = auto_flush
        self._recorder = (
            recorder if recorder is not None else current_recorder()
        )
        self._rounds = RoundLedger(recorder=self._recorder)
        with self._recorder.span("setup"):
            self._prepared: PreparedNetwork = setup_network(
                network, config, self._rounds
            )
        self._setup_rounds = self._rounds.total
        self._oracle: CongestBatchOracle = build_oracle(
            network, config, self._prepared.tree, self._rounds,
            self._recorder,
        )
        self._cost_model = CostModel.for_network(network)
        sg = config.dist_input.semigroup if config.dist_input else config.semigroup
        self._q_bits = sg.bits if sg is not None else self._cost_model.word_bits

        if memo is False or memo is None:
            self._memo: Optional[ResultMemo] = None
            self._fingerprint: Optional[str] = None
        else:
            self._fingerprint = oracle_fingerprint(network, config)
            if self._fingerprint is None:
                self._memo = None  # unfingerprintable content: stay safe
            else:
                self._memo = (
                    memo if isinstance(memo, ResultMemo)
                    else ResultMemo(recorder=self._recorder)
                )

        self._queue: List[_Submission] = []
        self._deferred_rounds = 0
        self._accounts: Dict[str, CallerAccount] = {}
        self._by_ticket: Dict[int, _Submission] = {}
        self._next_ticket = 0
        self.physical_batches = 0

    # -- caller-facing API ----------------------------------------------

    @property
    def parallelism(self) -> int:
        return self.config.parallelism

    @property
    def k(self) -> int:
        return self._oracle.k

    @property
    def leader(self) -> int:
        return self._prepared.leader

    @property
    def memo(self) -> Optional[ResultMemo]:
        return self._memo

    @property
    def oracle(self) -> CongestBatchOracle:
        """The shared physical oracle (advanced use; prefer submit/result)."""
        return self._oracle

    def account(self, caller: str) -> CallerAccount:
        """The (lazily created) accounting record for one caller."""
        acct = self._accounts.get(caller)
        if acct is None:
            acct = CallerAccount(
                name=caller,
                queries=QueryLedger(self.config.parallelism),
                rounds=RoundLedger(recorder=self._recorder),
            )
            self._accounts[caller] = acct
        return acct

    def submit(
        self,
        operation: Any,
        indices: Optional[Sequence[int]] = None,
        label: str = "",
    ) -> Ticket:
        """Enqueue one :class:`~repro.core.operation.Operation`.

        The canonical form is ``submit(Operation.query(caller, indices))``.
        The pre-PR 10 positional form ``submit(caller, indices, label=...)``
        still works but raises a :class:`DeprecationWarning`; it builds
        the identical Operation internally, so the two spellings are
        equivalent by construction.

        Meters the submission on the caller's ledger exactly as a serial
        ``oracle.query_batch(indices, label)`` would, then either serves
        it from the memo (zero rounds) or queues it for coalescing.
        """
        if not isinstance(operation, Operation):
            warnings.warn(
                "CoalescingScheduler.submit(caller, indices, label=...) is "
                "deprecated; pass Operation.query(caller, indices, label)",
                DeprecationWarning,
                stacklevel=2,
            )
            operation = Operation.query(
                str(operation), tuple(indices or ()), label=label
            )
        elif indices is not None:
            raise TypeError(
                "submit(Operation, ...) takes no separate indices; the "
                "payload lives inside the Operation"
            )
        if operation.is_write or operation.items:
            raise ValueError(
                "CoalescingScheduler serves oracle reads only; sketch "
                "traffic (inserts, item queries) goes to "
                "repro.sched.SketchScheduler"
            )
        caller = operation.caller
        label = operation.label
        indices = list(operation.indices)
        k = self._oracle.k
        for j in indices:
            if not 0 <= j < k:
                raise IndexError(f"query index {j} out of range [0, {k})")
        acct = self.account(caller)
        # Raises ParallelismViolation when len(indices) > p, empty-batch
        # ValueError when empty — the same validation a serial run hits.
        acct.queries.record(len(indices), label=label)
        acct.submissions += 1

        ticket = Ticket(id=self._next_ticket, caller=caller, size=len(indices))
        self._next_ticket += 1

        if self._memo is not None:
            cached = self._memo.lookup(self._fingerprint, indices)
            if cached is not None:
                sub = _Submission(ticket, caller, indices, label, estimate=0)
                sub.values = cached
                sub.remaining = 0
                self._by_ticket[ticket.id] = sub
                acct.memo_hits += 1
                if self._recorder.active:
                    self._recorder.coalesce(
                        size=len(indices), submissions=1, callers=1,
                        rounds=0, memo="hit",
                    )
                return ticket

        estimate = self._cost_model.batch_rounds(
            len(indices), self._q_bits, k
        )
        sub = _Submission(ticket, caller, indices, label, estimate=estimate)
        self._queue.append(sub)
        self._by_ticket[ticket.id] = sub
        self._deferred_rounds += estimate
        if self.auto_flush:
            self._maybe_flush()
        return ticket

    def done(self, ticket: Ticket) -> bool:
        """True when the submission's values are ready (no execution)."""
        sub = self._by_ticket.get(ticket.id)
        if sub is None:
            raise KeyError(f"unknown ticket {ticket.id}")
        return sub.done

    def result(self, ticket: Ticket) -> List[Any]:
        """The submission's values, forcing execution if still pending."""
        sub = self._by_ticket.get(ticket.id)
        if sub is None:
            raise KeyError(f"unknown ticket {ticket.id}")
        # FIFO packing puts this submission's indices ahead of anything
        # submitted later, so a bounded number of flushes completes it.
        while not sub.done:
            self._execute_batch()
        return list(sub.values)

    def flush(self) -> int:
        """Execute one physical batch now; returns its size (0 if idle)."""
        if not self._queue:
            return 0
        return self._execute_batch()

    def drain(self) -> None:
        """Execute until no query is pending."""
        while self._queue:
            self._execute_batch()

    # -- accounting ------------------------------------------------------

    @property
    def pending_queries(self) -> int:
        return sum(s.remaining for s in self._queue)

    @property
    def rounds(self) -> RoundLedger:
        """The shared physical ledger (setup + every coalesced batch)."""
        return self._rounds

    def report(self) -> SchedulerReport:
        return SchedulerReport(
            callers=len(self._accounts),
            submissions=sum(a.submissions for a in self._accounts.values()),
            total_queries=sum(
                a.queries.total_queries for a in self._accounts.values()
            ),
            physical_batches=self.physical_batches,
            physical_query_rounds=self._rounds.total - self._setup_rounds,
            setup_rounds=self._setup_rounds,
            memo_hits=self._memo.hits if self._memo is not None else 0,
            memo_misses=self._memo.misses if self._memo is not None else 0,
            memo_evictions=(
                self._memo.evictions if self._memo is not None else 0
            ),
            attributed_rounds=sum(
                a.attributed_rounds for a in self._accounts.values()
            ),
        )

    # -- internals -------------------------------------------------------

    def _maybe_flush(self) -> None:
        p = self.config.parallelism
        while self.pending_queries >= p:
            self._execute_batch()
        if self.deadline_rounds is None:
            return
        while self._queue and self._deferred_rounds > self.deadline_rounds:
            self._execute_batch()

    def _execute_batch(self) -> int:
        """Pack one maximal physical batch FIFO and run it to completion."""
        gen = self.execute_batch_steps()
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value

    def execute_batch_steps(self) -> Iterator[Tuple[str, int]]:
        """Stepwise :meth:`flush`: yields ``(phase, round)`` per engine round.

        The generator packs one maximal FIFO batch exactly like
        :meth:`_execute_batch` (which drives this generator, so the two
        paths are bit-identical by construction) but surrenders control
        after every engine round of the distribute/convergecast/uncompute
        passes.  This is the suspension point the :mod:`repro.serve`
        daemon's lanes use to interleave many in-flight batches on one
        event loop.  In formula mode there are no engine rounds, so the
        generator returns without yielding.  Returns the batch size via
        ``StopIteration.value`` (0 if the queue was empty).
        """
        p = self.config.parallelism
        batch_indices: List[int] = []
        slots: List[Tuple[_Submission, int]] = []  # (submission, position)
        for sub in self._queue:
            while sub.cursor < len(sub.indices) and len(batch_indices) < p:
                batch_indices.append(sub.indices[sub.cursor])
                slots.append((sub, sub.cursor))
                sub.cursor += 1
            if len(batch_indices) >= p:
                break
        if not batch_indices:
            return 0

        members = []  # submissions with >= 1 query in this batch, in order
        for sub, _pos in slots:
            if sub not in members:
                members.append(sub)
        # A single-submission batch keeps that submission's own label so
        # serial-degenerate runs (deadline 0, or p = 1 single-caller)
        # charge under the exact phase keys a serial run would.
        label = members[0].label if len(members) == 1 else "coalesced"

        before = self._rounds.total
        values = yield from self._oracle.query_batch_steps(
            batch_indices, label=label
        )
        delta = self._rounds.total - before

        for (sub, pos), value in zip(slots, values):
            sub.values[pos] = value
            sub.remaining -= 1

        counts: Dict[str, int] = {}
        for sub, _pos in slots:
            counts[sub.caller] = counts.get(sub.caller, 0) + 1
        for caller, share in _proportional_shares(delta, counts).items():
            self._accounts[caller].rounds.charge(
                f"batch:{label or 'query'}" if len(members) == 1
                else "coalesced", share,
            )

        completed = [s for s in members if s.done]
        for sub in completed:
            if self._memo is not None:
                self._memo.store(self._fingerprint, sub.indices, sub.values)
        self._queue = [s for s in self._queue if not s.done]
        self._deferred_rounds = sum(s.estimate for s in self._queue)
        self.physical_batches += 1
        if self._recorder.active:
            self._recorder.coalesce(
                size=len(batch_indices), submissions=len(members),
                callers=len(counts), rounds=delta, memo="miss",
            )
        return len(batch_indices)

    def pack_would_be_empty(self) -> bool:
        """True when a flush right now would execute nothing."""
        return not self._queue


class CallerOracle:
    """One caller's :class:`~repro.queries.oracle.BatchOracle` view of a
    shared :class:`CoalescingScheduler`.

    Any Section 2 parallel-query algorithm runs unchanged against this
    adapter: ``query_batch`` submits on the caller's behalf and redeems
    the ticket immediately, so adaptive algorithms (whose next batch
    depends on the previous answers) stay correct — redeeming forces
    execution, and coalescing happens with whatever *other* callers have
    pending at that moment.  The ``ledger`` is the caller's own
    :class:`~repro.queries.ledger.QueryLedger`, metered exactly as a
    private ``run_framework`` oracle would meter it.

    ``peek_all`` passes through to the shared oracle's physics backdoor
    (outcome simulation only — the same contract as every other
    :class:`~repro.queries.oracle.BatchOracle`).
    """

    def __init__(self, scheduler: CoalescingScheduler, caller: str):
        self.scheduler = scheduler
        self.caller = caller

    @property
    def ledger(self) -> QueryLedger:
        return self.scheduler.account(self.caller).queries

    @property
    def k(self) -> int:
        return self.scheduler.k

    def query_batch(self, indices: Sequence[int], label: str = "") -> List[Any]:
        ticket = self.scheduler.submit(
            Operation.query(self.caller, indices, label=label)
        )
        return self.scheduler.result(ticket)

    def peek_all(self) -> Sequence[Any]:
        return self.scheduler.oracle.peek_all()
