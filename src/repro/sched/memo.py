"""Content-addressed result memo for the coalescing scheduler.

Query values served by a :class:`~repro.core.framework.CongestBatchOracle`
are deterministic functions of the oracle's *content*: the network
topology, the semigroup, and the per-node input vectors (or the value
computer).  Two submissions asking for the same index multiset against
the same content therefore receive bit-identical answers — the second
distribute/convergecast is pure waste.  The memo exploits this with a
content address::

    (oracle fingerprint) x (sorted index tuple)  ->  {index: value}

The *oracle fingerprint* (:func:`oracle_fingerprint`) hashes everything
the answer can depend on; a mutated input or a different topology yields
a different fingerprint, so for the read-only oracles stale entries can
never be served — addresses simply stop being asked for.  Writable lanes
(the PR 10 amplitude sketches, whose *identity* fingerprint is stable
across inserts by design) break that assumption, so the memo also has an
explicit write-path protocol: :meth:`ResultMemo.invalidate_fingerprint`
drops every entry under one fingerprint, and the sketch scheduler calls
it on every insert — a stale memo can never serve a pre-insert overlap.
Index tuples are sorted (duplicates kept) so permuted submissions share
one entry; values are stored per index and re-ordered to the submission
order at serve time.

The store is a bounded LRU (``max_entries``): inserting past capacity
evicts the least-recently-used entry, and lookups refresh recency, so a
long-lived serving daemon keeps the memo tracking its live traffic.
Hit/miss/evict counters feed the scheduler's ``coalesce`` events on the
observability spine (:mod:`repro.obs`) and :class:`~repro.obs.sinks.
MetricsSink` roll-ups.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..congest.network import Network
from ..core.framework import FrameworkConfig
from ..obs.recorder import Recorder

__all__ = ["ResultMemo", "oracle_fingerprint"]


def oracle_fingerprint(
    network: Network, config: FrameworkConfig
) -> Optional[str]:
    """Hash everything a query answer can depend on, or None.

    Returns ``None`` when the content cannot be fingerprinted — an
    on-the-fly :class:`~repro.core.framework.ValueComputer` without a
    ``fingerprint()`` method — in which case the memo must stay disabled
    for that oracle (serving would risk wrong answers across inputs).

    The execution ``mode`` is deliberately excluded: formula and engine
    mode answer queries with identical *values* (only the round charges
    differ), and the memo stores values, never charges.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(b"congest-oracle/1;")
    h.update(network.topology_fingerprint().encode())
    if config.dist_input is not None:
        di = config.dist_input
        sg = di.semigroup
        h.update(f";sg={sg.name}/{sg.bits};k={di.k}".encode())
        for v in sorted(di.vectors):
            h.update(f";{v}:".encode())
            h.update(",".join(str(x) for x in di.vectors[v]).encode())
        return h.hexdigest()
    if config.computer is not None:
        fp = getattr(config.computer, "fingerprint", None)
        token = fp() if callable(fp) else None
        if not isinstance(token, str) or not token:
            return None
        sg = config.semigroup
        sg_token = f"{sg.name}/{sg.bits}" if sg is not None else "none"
        h.update(f";computer={token};k={config.k};sg={sg_token}".encode())
        return h.hexdigest()
    return None


class ResultMemo:
    """The content-addressed store; shareable across schedulers.

    One memo object may serve any number of schedulers (even over
    different networks and inputs) because every entry is addressed by
    the full oracle fingerprint — cross-oracle collisions are
    cryptographically excluded rather than procedurally avoided.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when set")
        self._entries: "OrderedDict[Tuple[str, Tuple[int, ...]], Dict[int, Any]]" = (
            OrderedDict()
        )
        self.max_entries = max_entries
        self._recorder = recorder
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0  # entries dropped by write-path invalidation

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(fingerprint: str, indices: Sequence[int]) -> Tuple[str, Tuple[int, ...]]:
        return (fingerprint, tuple(sorted(indices)))

    def lookup(
        self, fingerprint: str, indices: Sequence[int]
    ) -> Optional[List[Any]]:
        """Values in submission order on a hit, else None; counts either way.

        A hit refreshes the entry's LRU recency: a daemon's hot addresses
        stay resident while one-shot submissions age out.
        """
        key = self._key(fingerprint, indices)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return [entry[j] for j in indices]

    def store(
        self, fingerprint: str, indices: Sequence[int], values: Sequence[Any]
    ) -> None:
        """Record one answered submission, evicting the LRU entry if full.

        Eviction (rather than refusing the insert) keeps a long-lived
        daemon's memo tracking its *current* traffic instead of freezing
        at whatever filled it during cold start.  Dropping an entry only
        costs rounds on a future re-ask — values are recomputed
        bit-identically — and is surfaced as a ``coalesce`` event with
        ``memo="evict"`` when a recorder is attached.
        """
        if len(indices) != len(values):
            raise ValueError(
                f"{len(indices)} indices but {len(values)} values"
            )
        key = self._key(fingerprint, indices)
        self._entries[key] = dict(zip(indices, values))
        self._entries.move_to_end(key)
        if (
            self.max_entries is not None
            and len(self._entries) > self.max_entries
        ):
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            if self._recorder is not None and self._recorder.active:
                self._recorder.coalesce(
                    size=len(evicted), submissions=0, callers=0,
                    rounds=0, memo="evict",
                )

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry addressed under ``fingerprint``; returns count.

        The write-path protocol: a lane whose content just changed but
        whose identity fingerprint is stable (an amplitude sketch after
        an insert) must call this *before* the write is acknowledged, so
        no reader can be served a pre-write value.  Dropped entries are
        counted in ``invalidations`` (distinct from LRU ``evictions``,
        which are a capacity phenomenon, not a correctness one) and
        surfaced as one ``coalesce`` event with ``memo="invalidate"``.
        """
        stale = [k for k in self._entries if k[0] == fingerprint]
        for key in stale:
            del self._entries[key]
        if stale:
            self.invalidations += len(stale)
            if self._recorder is not None and self._recorder.active:
                self._recorder.coalesce(
                    size=len(stale), submissions=0, callers=0,
                    rounds=0, memo="invalidate",
                )
        return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
