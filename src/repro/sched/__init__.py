"""Query-batch coalescing across callers (``repro.sched``).

Theorem 8 prices a ``(b, p)`` run per *batch* — ``O(b·(p/n + 1)·D)``
rounds — regardless of whose queries fill a batch.  This package exploits
that: many callers share one :class:`~repro.core.framework.FrameworkConfig`
oracle, the :class:`CoalescingScheduler` packs their under-filled
submissions into maximal width-``p`` physical batches (fill-or-flush
against a round-budget deadline), runs **one** distribute/convergecast per
physical batch, splits the values back per caller, and attributes the
physically charged rounds to callers proportionally (largest-remainder,
conserving exactly).  A content-addressed :class:`ResultMemo` answers
repeated submissions in zero rounds.

Layers:

* :mod:`repro.sched.scheduler` — the scheduler, per-caller accounts, and
  the :class:`CallerOracle` adapter that lets any
  :class:`~repro.queries.oracle.BatchOracle` algorithm run over a shared
  scheduler unchanged.
* :mod:`repro.sched.memo` — the (oracle fingerprint × sorted index
  tuple) result memo, with the PR 10 write-path invalidation protocol
  (:meth:`ResultMemo.invalidate_fingerprint`).
* :mod:`repro.sched.sketch` — the :class:`SketchScheduler`: FIFO
  insert/query streams against a shared amplitude sketch
  (:mod:`repro.apps.sketches`), duck-typing the daemon-facing scheduler
  surface so :mod:`repro.serve` drives sketch lanes and oracle lanes
  through one worker loop.
* :mod:`repro.sched.verify` — the bit-identical-to-serial equivalence
  invariant (outputs, per-caller query-ledger signatures, exact round
  conservation), same discipline as :mod:`repro.parallel.verify`.

Every physical batch and memo hit is emitted as a ``coalesce`` event on
the observability spine (:mod:`repro.obs`); ``python -m repro bench
--workload sched`` measures amortized rounds-per-query against caller
count (DESIGN.md §6f).
"""

from ..core.operation import Operation, OperationStream
from .memo import ResultMemo, oracle_fingerprint
from .scheduler import (
    CallerAccount,
    CallerOracle,
    CoalescingScheduler,
    SchedulerReport,
    Ticket,
)
from .sketch import SketchCallerAccount, SketchReport, SketchScheduler
from .verify import CoalescingVerdict, Submission, verify_coalescing

__all__ = [
    "CallerAccount",
    "CallerOracle",
    "CoalescingScheduler",
    "CoalescingVerdict",
    "Operation",
    "OperationStream",
    "ResultMemo",
    "SchedulerReport",
    "SketchCallerAccount",
    "SketchReport",
    "SketchScheduler",
    "Submission",
    "Ticket",
    "oracle_fingerprint",
    "verify_coalescing",
]
