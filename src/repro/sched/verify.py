"""Bit-identical-to-serial pinning for the coalescing scheduler.

Same discipline as :mod:`repro.parallel.verify`: the optimized path is
only trusted because an executable invariant compares it against the
plain path.  For the scheduler the invariant has four clauses, checked
by :func:`verify_coalescing` on an explicit workload:

1. **Outputs** — every submission's values under coalescing equal,
   element for element, the values the same call sequence produces on a
   private serial oracle (one ``run_framework`` per caller).
2. **Query ledgers** — each caller's :class:`~repro.queries.ledger.
   QueryLedger` signature (the ``(size, label)`` batch trace) is
   identical to its serial ledger's.  Coalescing changes *physical*
   batching, never the metered (b, p) accounting of Definition 1.
3. **Round conservation** — the per-caller attributed rounds sum
   exactly to the physically charged query rounds (largest-remainder
   attribution conserves by construction; this re-checks it end to end).
4. **Serial degeneracy** — with ``deadline_rounds=0`` the scheduler
   executes every submission immediately, and each caller's attributed
   round total equals its serial query-round total exactly, not just
   approximately.

The memo is disabled during verification: a memo hit answers in zero
rounds by design, which is a deliberate departure from serial round
accounting (values stay bit-identical either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..congest.network import Network
from ..core.framework import FrameworkConfig, run_framework
from ..core.operation import Operation
from .scheduler import CoalescingScheduler, Ticket

__all__ = ["CoalescingVerdict", "Submission", "verify_coalescing"]

#: One workload item: (caller name, query indices, batch label).
Submission = Tuple[str, Sequence[int], str]


@dataclass(frozen=True)
class CoalescingVerdict:
    """Outcome of one coalesced-vs-serial equivalence check."""

    identical: bool
    detail: str
    callers: int
    submissions: int
    serial_query_rounds: int
    coalesced_query_rounds: int
    physical_batches: int

    @property
    def round_saving(self) -> float:
        """Fraction of serial query rounds the scheduler avoided."""
        if self.serial_query_rounds == 0:
            return 0.0
        return 1.0 - self.coalesced_query_rounds / self.serial_query_rounds


def _serial_baseline(
    network: Network,
    config: FrameworkConfig,
    workload: Sequence[Submission],
) -> Tuple[Dict[str, Any], Dict[int, List[Any]]]:
    """Run each caller's submission sequence on its own private oracle."""
    by_caller: Dict[str, List[Tuple[int, Sequence[int], str]]] = {}
    for slot, (caller, indices, label) in enumerate(workload):
        by_caller.setdefault(caller, []).append((slot, indices, label))

    runs: Dict[str, Any] = {}
    values: Dict[int, List[Any]] = {}
    for caller, items in by_caller.items():
        def algorithm(oracle, _rng, items=items):
            return [
                (slot, oracle.query_batch(list(indices), label=label))
                for slot, indices, label in items
            ]

        run = run_framework(network, algorithm, config=config)
        runs[caller] = run
        for slot, vals in run.result:
            values[slot] = vals
    return runs, values


def _query_rounds(run) -> int:
    """A serial run's non-setup round total (what coalescing can amortize)."""
    return sum(
        rounds
        for phase, rounds in run.rounds.by_phase().items()
        if not phase.startswith("setup")
    )


def verify_coalescing(
    network: Network,
    config: FrameworkConfig,
    workload: Sequence[Submission],
    deadline_rounds: Optional[int] = None,
) -> CoalescingVerdict:
    """Check the four-clause equivalence invariant on one workload.

    Args:
        network: the shared CONGEST network.
        config: the shared-oracle :class:`FrameworkConfig` (the same
            object each serial baseline run uses).
        workload: submissions in arrival order — ``(caller, indices,
            label)`` triples; interleaving callers is the interesting
            case.
        deadline_rounds: forwarded to the scheduler.  ``0`` additionally
            activates the serial-degeneracy clause.

    Returns:
        a :class:`CoalescingVerdict`; ``identical`` is True only if every
        clause holds.
    """
    serial_runs, serial_values = _serial_baseline(network, config, workload)

    sched = CoalescingScheduler(
        network, config, deadline_rounds=deadline_rounds, memo=False,
    )
    tickets: List[Ticket] = [
        sched.submit(Operation.query(caller, indices, label=label))
        for caller, indices, label in workload
    ]
    sched.drain()

    problems: List[str] = []
    for slot, ticket in enumerate(tickets):
        got = sched.result(ticket)
        want = serial_values[slot]
        if got != want:
            problems.append(
                f"submission {slot} ({ticket.caller}): values {got!r} != "
                f"serial {want!r}"
            )

    for caller, run in serial_runs.items():
        acct = sched.account(caller)
        if acct.queries.signature() != run.query_ledger.signature():
            problems.append(
                f"caller {caller}: ledger signature "
                f"{acct.queries.signature()} != serial "
                f"{run.query_ledger.signature()}"
            )

    report = sched.report()
    if report.attributed_rounds != report.physical_query_rounds:
        problems.append(
            f"attribution leak: {report.attributed_rounds} attributed != "
            f"{report.physical_query_rounds} physical"
        )

    if deadline_rounds == 0:
        for caller, run in serial_runs.items():
            serial_q = _query_rounds(run)
            attributed = sched.account(caller).attributed_rounds
            if attributed != serial_q:
                problems.append(
                    f"caller {caller}: serial-degenerate attributed rounds "
                    f"{attributed} != serial {serial_q}"
                )

    serial_total = sum(_query_rounds(r) for r in serial_runs.values())
    return CoalescingVerdict(
        identical=not problems,
        detail="; ".join(problems) if problems else (
            f"{report.submissions} submissions from {report.callers} "
            f"callers coalesced into {report.physical_batches} batches, "
            f"{report.physical_query_rounds}/{serial_total} rounds"
        ),
        callers=report.callers,
        submissions=report.submissions,
        serial_query_rounds=serial_total,
        coalesced_query_rounds=report.physical_query_rounds,
        physical_batches=report.physical_batches,
    )
