"""Plain-text experiment tables (paper bound vs. measured).

The benchmark harness prints one table per experiment in a fixed format so
EXPERIMENTS.md entries can be regenerated verbatim.

:func:`cost_breakdown_table` renders the unified records of an
instrumented run (:mod:`repro.obs`) in the same table format: per-phase
round charges with span attribution, plus the aggregate engine / query /
fault counters — the "what did this run cost, where" artifact that
``python -m repro trace`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ExperimentTable:
    """A titled table with typed columns and optional footnotes."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        header = [str(c) for c in self.columns]
        body = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()


def cost_breakdown_table(experiment_id: str, metrics) -> ExperimentTable:
    """Per-phase cost breakdown of an instrumented run.

    Args:
        experiment_id: label for the table header (e.g. ``"E7"``).
        metrics: a filled :class:`repro.obs.MetricsSink`.

    One row per charged ledger phase (in first-charge order) with the
    span it was first charged under and its share of all charged rounds;
    aggregate engine traffic, query batches, busiest edge, and fault
    counts are appended as notes.
    """
    table = ExperimentTable(
        experiment_id,
        "per-phase cost breakdown (observability spine)",
        ["phase", "span", "rounds", "share"],
    )
    total = metrics.total_charged
    for phase, rounds in metrics.charges_by_phase.items():
        table.add_row(
            phase,
            metrics.phase_span.get(phase, "") or "-",
            rounds,
            rounds / total if total else 0.0,
        )
    table.add_row("(total charged)", "-", total, 1.0 if total else 0.0)
    table.add_note(
        f"query batches: {metrics.query_batches} "
        f"({metrics.total_queries} queries)"
    )
    edge, edge_bits = metrics.busiest_edge()
    if edge is None:
        table.add_note("busiest edge: none (no engine deliveries recorded)")
    else:
        table.add_note(
            f"busiest edge: {edge[0]}->{edge[1]} carried {edge_bits} bits"
        )
    table.add_note(
        f"engine: {metrics.engine_rounds} measured rounds, "
        f"{metrics.messages} messages, {metrics.bits} bits delivered"
    )
    if metrics.fault_counts:
        per_kind = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(metrics.fault_counts.items())
        )
        table.add_note(f"fault events: {metrics.total_faults} ({per_kind})")
    else:
        table.add_note("fault events: 0")
    return table


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
