"""Plain-text experiment tables (paper bound vs. measured).

The benchmark harness prints one table per experiment in a fixed format so
EXPERIMENTS.md entries can be regenerated verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ExperimentTable:
    """A titled table with typed columns and optional footnotes."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        header = [str(c) for c in self.columns]
        body = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
