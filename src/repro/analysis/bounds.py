"""One-stop summary of every bound in the paper, evaluated numerically.

The paper's introduction is effectively a table of round complexities;
:func:`bounds_summary` regenerates it for concrete (n, k, D, ε, g)
parameters so users can see, before running anything, where the quantum
advantage is predicted to appear.  All formulas drop hidden constants and
polylog factors except where the paper spells them out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..apps.cycles import quantum_cycle_bound
from ..apps.deutsch_jozsa import quantum_round_bound as dj_quantum_bound
from ..apps.eccentricity import quantum_avg_ecc_bound, quantum_diameter_bound
from ..apps.element_distinctness import quantum_round_bound_vector
from ..apps.even_cycles import quantum_even_cycle_bound
from ..apps.girth import quantum_girth_bound
from ..apps.meeting import quantum_round_bound as meeting_quantum_bound
from ..apps.triangles import classical_triangle_bound, quantum_triangle_bound
from ..baselines.cycles import classical_cycle_bound
from ..baselines.diameter import classical_diameter_bound
from ..baselines.streaming import classical_streaming_bound
from .report import ExperimentTable


def bounds_summary(
    n: int = 4096,
    k: int = 65536,
    diameter: int = 16,
    epsilon: float = 0.5,
    girth: int = 6,
    max_value: Optional[int] = None,
) -> ExperimentTable:
    """The paper's contributions table at concrete parameters.

    Returns a table of (problem, quantum rounds, classical rounds,
    speedup factor) for every application in Sections 4–5.
    """
    if max_value is None:
        max_value = n * n
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    table = ExperimentTable(
        "BOUNDS",
        f"Paper bounds at n={n}, k={k}, D={diameter}, ε={epsilon}, g={girth}",
        ["problem", "quantum rounds", "classical rounds", "speedup"],
    )

    rows = [
        (
            "meeting scheduling (Lem 10/11)",
            meeting_quantum_bound(k, diameter, n),
            classical_streaming_bound(k, log_n, diameter, n),
        ),
        (
            "element distinctness (Lem 12/13)",
            quantum_round_bound_vector(k, diameter, n, max_value),
            classical_streaming_bound(
                k, math.ceil(math.log2(max_value * n)), diameter, n
            ),
        ),
        (
            "Deutsch–Jozsa, exact (Thm 17/18)",
            dj_quantum_bound(k, diameter, n),
            classical_streaming_bound(k, 1, diameter, n),
        ),
        (
            "diameter / radius (Lem 21)",
            quantum_diameter_bound(n, diameter),
            classical_diameter_bound(n, diameter),
        ),
        (
            "avg eccentricity ±ε (Lem 22)",
            quantum_avg_ecc_bound(diameter, epsilon),
            classical_diameter_bound(n, diameter),
        ),
        (
            f"cycle ≤ {girth} detection (Lem 25)",
            quantum_cycle_bound(n, girth),
            classical_cycle_bound(n, girth),
        ),
        (
            f"girth = {girth} (Cor 26)",
            quantum_girth_bound(n, girth),
            math.sqrt(n),
        ),
        (
            "exact C4 detection (remark)",
            quantum_even_cycle_bound(n, 4),
            math.sqrt(n),
        ),
        (
            "triangle finding (subroutine)",
            quantum_triangle_bound(n),
            classical_triangle_bound(n),
        ),
    ]
    for name, quantum, classical in rows:
        table.add_row(name, quantum, classical, classical / quantum)
    table.add_note(
        "classical entries are the matching upper bounds / lower-bound "
        "floors the paper compares against; constants and polylogs dropped "
        "unless stated in the paper"
    )
    return table
