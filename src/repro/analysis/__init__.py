"""Analysis utilities: ground-truth graph computations, scaling fits, reports."""

from . import bounds, fitting, graphtruth, report

__all__ = ["bounds", "fitting", "graphtruth", "report"]
