"""Ground-truth graph computations used by cycle/girth apps and tests.

These are centralized (non-CONGEST) reference computations: exact girth,
shortest cycle through a vertex, and the per-vertex cycle values that
Lemma 23's heavy-cycle search queries.  The CONGEST algorithms charge
their round costs separately; these routines provide the *values* (and
the correctness oracle for tests).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Optional, Set

import networkx as nx


def shortest_cycle_through(graph: nx.Graph, u, cap: Optional[int] = None) -> Optional[int]:
    """Length of the shortest cycle containing vertex ``u``; None if acyclic.

    For each neighbor w, removes the edge (u, w) and BFSes from u to w:
    the shortest alternative path plus the removed edge closes the
    shortest cycle using that edge.  ``cap`` prunes BFS depth (cycles
    longer than cap are reported as None).
    """
    best: Optional[int] = None
    neighbors = list(graph.neighbors(u))
    for w in neighbors:
        limit = (best - 2) if best is not None else (cap - 1 if cap else None)
        dist = _bfs_distance_avoiding_edge(graph, u, w, limit)
        if dist is not None:
            length = dist + 1
            if best is None or length < best:
                best = length
    if best is not None and cap is not None and best > cap:
        return None
    return best


def _bfs_distance_avoiding_edge(
    graph: nx.Graph, source, target, limit: Optional[int]
) -> Optional[int]:
    """BFS distance from source to target ignoring the edge (source, target)."""
    if source == target:
        return 0
    seen = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        d = seen[v]
        if limit is not None and d >= limit:
            continue
        for nbr in graph.neighbors(v):
            if v == source and nbr == target:
                continue  # the removed edge
            if nbr not in seen:
                seen[nbr] = d + 1
                if nbr == target:
                    return d + 1
                queue.append(nbr)
    return None


def girth(graph: nx.Graph) -> Optional[int]:
    """Exact girth via the classical per-vertex BFS scan; None if a forest.

    For every vertex v, a BFS that, upon scanning a non-tree edge (a, b),
    records dist(a) + dist(b) + 1.  The minimum over all vertices and
    edges is exactly the girth (standard O(nm) algorithm).
    """
    best: Optional[int] = None
    for v in graph.nodes():
        candidate = _bfs_cycle_scan(graph, v, best)
        if candidate is not None and (best is None or candidate < best):
            best = candidate
            if best == 3:
                return 3
    return best


def _bfs_cycle_scan(graph: nx.Graph, root, cutoff: Optional[int]) -> Optional[int]:
    dist = {root: 0}
    parent = {root: None}
    queue = deque([root])
    best: Optional[int] = None
    while queue:
        v = queue.popleft()
        if cutoff is not None and dist[v] * 2 + 1 >= cutoff:
            break
        for nbr in graph.neighbors(v):
            if nbr not in dist:
                dist[nbr] = dist[v] + 1
                parent[nbr] = v
                queue.append(nbr)
            elif parent[v] != nbr:
                candidate = dist[v] + dist[nbr] + 1
                if best is None or candidate < best:
                    best = candidate
    return best


def min_cycle_at_most(graph: nx.Graph, k: int) -> Optional[int]:
    """The smallest cycle length l ≤ k, or None if no such cycle exists."""
    g = girth(graph)
    if g is not None and g <= k:
        return g
    return None


def cycle_value(graph: nx.Graph, s, k: int, cache: Optional[Dict] = None) -> int:
    """Lemma 23's per-vertex query value.

    The length of the smallest cycle of length ≤ k containing s or one of
    its neighbors, or k + 1 (the ∞ sentinel) if there is none.
    """
    best = k + 1
    for u in [s, *graph.neighbors(s)]:
        if cache is not None and u in cache:
            length = cache[u]
        else:
            length = shortest_cycle_through(graph, u, cap=k)
            if cache is not None:
                cache[u] = length
        if length is not None and length <= k:
            best = min(best, length)
    return best


def light_subgraph(graph: nx.Graph, degree_cap: float) -> nx.Graph:
    """The induced subgraph on vertices of degree ≤ degree_cap."""
    keep = [v for v in graph.nodes() if graph.degree(v) <= degree_cap]
    return graph.subgraph(keep)


def has_heavy_vertex_on_min_cycle(graph: nx.Graph, k: int, degree_cap: float) -> Optional[bool]:
    """Does some minimum-length (≤ k) cycle contain a vertex of degree > cap?

    Returns None when the graph has no cycle of length ≤ k.  Used by tests
    to exercise both branches of Lemma 23.
    """
    target = min_cycle_at_most(graph, k)
    if target is None:
        return None
    light = light_subgraph(graph, degree_cap)
    light_min = min_cycle_at_most(light, k)
    return light_min is None or light_min > target
