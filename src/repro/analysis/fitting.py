"""Scaling-law fits for the experiment harness.

The paper's results are Θ-bounds; EXPERIMENTS.md reproduces them by
fitting measured round/batch counts against the predicted power laws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass
class PowerLawFit:
    """y ≈ coefficient · x^exponent, fitted on log–log axes."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of log y against log x.

    Raises:
        ValueError: on fewer than two points or non-positive data.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two matching (x, y) points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fits need positive data")
    lx, ly = np.log(xs), np.log(ys)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope), coefficient=float(math.exp(intercept)), r_squared=r2
    )


def geometric_ratio(ys: Sequence[float]) -> float:
    """Mean successive ratio — quick doubling-behaviour summary."""
    ys = np.asarray(ys, dtype=float)
    if ys.size < 2 or np.any(ys <= 0):
        raise ValueError("need at least two positive values")
    return float(np.exp(np.mean(np.diff(np.log(ys)))))


def within_constant_factor(
    measured: Sequence[float], bound: Sequence[float], factor: float
) -> bool:
    """Is measured ≤ factor · bound pointwise (the Θ-reproduction check)?"""
    measured = np.asarray(measured, dtype=float)
    bound = np.asarray(bound, dtype=float)
    if measured.shape != bound.shape:
        raise ValueError("shape mismatch")
    return bool(np.all(measured <= factor * bound))
