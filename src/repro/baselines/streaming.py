"""Classical CONGEST baselines for the distributed-data problems.

The paper's Lemma 11 remark: "there exists a trivial O(k/log n + D)
classical CONGEST algorithm ... where all nodes send all their values to a
leader through the BFS tree.  This can be seen as coming from a trivial
classical parallel-query algorithm: query all values in one batch of size
p = k."  That protocol is the optimal classical comparator for meeting
scheduling, element distinctness, and (exact) Deutsch–Jozsa, matching the
Ω(k/log n + D) lower bounds — so measuring it against the quantum
protocols exhibits the separations.

Two modes: ``engine`` actually streams everything up a BFS tree with the
pipelined convergecast (rounds measured), ``formula`` charges
D + k·⌈q/log n⌉.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..congest.algorithms.aggregate import pipelined_upcast
from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.algorithms.leader import elect_leader
from ..congest.network import Network
from ..core.cost import CostModel
from ..core.framework import DistributedInput
from ..core.semigroup import Semigroup
from ..quantum.deutsch_jozsa import check_promise, is_constant


@dataclass
class StreamingResult:
    """Leader-side answer of the stream-everything protocol."""

    aggregated: List[int]
    rounds: int
    leader: int


def stream_to_leader(
    network: Network,
    dist_input: DistributedInput,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> StreamingResult:
    """Aggregate the full k-vector ⊕_v x^{(v)} at an elected leader."""
    election = elect_leader(network, seed=seed)
    rounds = election.rounds
    tree = bfs_with_echo(network, election.leader, seed=seed)
    rounds += tree.rounds
    semigroup = dist_input.semigroup

    if mode == "engine":
        words = CostModel.for_network(network).words(semigroup.bits)
        identity = semigroup.identity
        if identity is None:
            raise ValueError("engine streaming needs a monoid identity")
        vectors = {}
        for v in network.nodes():
            row: List[int] = []
            for value in dist_input.vectors[v]:
                row.extend([identity] * (words - 1))
                row.append(value)
            vectors[v] = row
        combined, up_rounds = pipelined_upcast(
            network,
            tree,
            vectors,
            combine=semigroup.combine,
            domain=max(semigroup.domain_size or (1 << semigroup.bits), 2),
            seed=seed,
        )
        rounds += up_rounds
        aggregated = [
            combined[i * words + (words - 1)] for i in range(dist_input.k)
        ]
    else:
        cm = CostModel.for_network(network)
        rounds += cm.diameter + dist_input.k * cm.words(semigroup.bits)
        aggregated = dist_input.aggregated()

    return StreamingResult(
        aggregated=aggregated, rounds=rounds, leader=election.leader
    )


def classical_meeting(
    network: Network,
    calendars: Dict[int, List[int]],
    mode: str = "formula",
    seed: Optional[int] = None,
) -> Tuple[int, int, int]:
    """Deterministic classical meeting scheduling: (slot, availability, rounds)."""
    from ..core.semigroup import sum_semigroup

    dist_input = DistributedInput(dict(calendars), sum_semigroup(network.n))
    result = stream_to_leader(network, dist_input, mode=mode, seed=seed)
    best = max(range(len(result.aggregated)), key=lambda i: result.aggregated[i])
    return best, result.aggregated[best], result.rounds


def classical_element_distinctness(
    network: Network,
    vectors: Dict[int, List[int]],
    max_value: int,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> Tuple[Optional[Tuple[int, int]], int]:
    """Deterministic classical ED on x = Σ_v x^{(v)}: (pair or None, rounds)."""
    from ..core.semigroup import sum_semigroup

    dist_input = DistributedInput(
        dict(vectors), sum_semigroup(max_value * network.n)
    )
    result = stream_to_leader(network, dist_input, mode=mode, seed=seed)
    seen: Dict[int, int] = {}
    for i, v in enumerate(result.aggregated):
        if v in seen:
            return (seen[v], i), result.rounds
        seen[v] = i
    return None, result.rounds


def classical_deutsch_jozsa(
    network: Network,
    inputs: Dict[int, List[int]],
    mode: str = "formula",
    seed: Optional[int] = None,
) -> Tuple[bool, int]:
    """Exact classical DJ: stream everything, decide with zero error.

    This is the Ω(k/log n + D)-matching protocol of Theorem 18's remark —
    paying the full k, exponentially more than Theorem 17's quantum cost.
    Returns (constant?, rounds).
    """
    from ..core.semigroup import xor_semigroup

    dist_input = DistributedInput(dict(inputs), xor_semigroup(1))
    result = stream_to_leader(network, dist_input, mode=mode, seed=seed)
    bits = result.aggregated
    check_promise(bits)
    return is_constant(bits), result.rounds


def classical_streaming_bound(k: int, q_bits: int, diameter: int, n: int) -> float:
    """D + k·⌈q/log n⌉ — the trivial protocol's cost."""
    word = max(1, math.ceil(math.log2(max(n, 2))))
    return diameter + k * max(1, math.ceil(q_bits / word))
