"""Classical CONGEST baselines for diameter/radius/eccentricities.

The optimal classical algorithms [PRT12; HW12] compute *all* n
eccentricities in O(n) rounds via pipelined all-sources BFS — and
[FHW12] shows Ω(n/log n) is required for exact diameter even at D = O(1).
Against Lemma 21's O(√(nD)) quantum rounds this is the E10 separation
whenever D ≪ n.

``engine`` mode runs the real n-source pipelined flood plus tree
aggregation; ``formula`` charges 2n + 3D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..congest.algorithms.bfs import bfs_with_echo
from ..congest.algorithms.leader import elect_leader
from ..congest.algorithms.multibfs import eccentricities_of_sources
from ..congest.network import Network


@dataclass
class ClassicalEccentricities:
    eccentricities: Dict[int, int]
    diameter: int
    radius: int
    rounds: int


def classical_all_eccentricities(
    network: Network,
    mode: str = "formula",
    seed: Optional[int] = None,
) -> ClassicalEccentricities:
    """Every node's eccentricity via all-sources pipelined BFS."""
    if mode == "engine":
        election = elect_leader(network, seed=seed)
        tree = bfs_with_echo(network, election.leader, seed=seed)
        eccs, rounds = eccentricities_of_sources(
            network, list(network.nodes()), tree, seed=seed
        )
        rounds += election.rounds + tree.rounds
    else:
        eccs = dict(network.eccentricities)
        rounds = 2 * network.n + 3 * max(network.diameter, 1)
    return ClassicalEccentricities(
        eccentricities=eccs,
        diameter=max(eccs.values()),
        radius=min(eccs.values()),
        rounds=rounds,
    )


def classical_diameter_bound(n: int, diameter: int) -> float:
    """The O(n + D) pipelined all-BFS cost (constants ≈ 2–3)."""
    return 2 * n + 3 * max(diameter, 1)
