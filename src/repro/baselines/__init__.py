"""Classical CONGEST comparators for every quantum application."""

from . import cycles, diameter, streaming

__all__ = ["cycles", "diameter", "streaming"]
