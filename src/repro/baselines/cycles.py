"""Classical CONGEST baseline for bounded-length cycle detection and girth.

The classical analogue of Lemma 23 replaces the parallel quantum minimum
finding in the heavy phase with classical sampling: to hit one of the
≥ n^β vertices adjacent to a heavy cycle one needs Θ(n^{1−β}) samples in
expectation, evaluated in groups of p at α(p) = p + k rounds each, so the
heavy phase costs Θ((n^{1−β}/p)·(D + p + k)) rounds.  With the light phase
unchanged and the same balancing freedom, the classical total is

    O(D + n^{1 − 1/Θ(k)})     vs. quantum O(D + (Dn)^{1/2 − 1/Θ(k)}),

and for girth the classical lower bound is Ω(√n) [FHW12] — the E12/E13
separations.  ``detect_cycle_classical`` mirrors the quantum code path so
the two measure the same workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..analysis.graphtruth import cycle_value, girth as true_girth
from ..apps.cycles import balanced_beta, light_cycle_scan
from ..congest.network import Network


@dataclass
class ClassicalCycleResult:
    length: Optional[int]
    rounds: int
    light_rounds: int
    heavy_rounds: int
    beta: float

    @property
    def found(self) -> bool:
        return self.length is not None


def classical_balanced_beta(n: int, k: int) -> float:
    """Balance light O(n^{⌈k/2⌉β}) against classical heavy O(n^{1−β})."""
    beta = 1.0 / (1.0 + math.ceil(k / 2))
    return min(max(beta, 1.0 / math.log2(max(n, 4))), 1.0)


def classical_cycle_bound(n: int, k: int) -> float:
    """k + n^{1 − 1/(⌈k/2⌉+1)} — the classical balanced cost."""
    return k + n ** (1.0 - 1.0 / (math.ceil(k / 2) + 1))


def detect_cycle_classical(
    network: Network,
    k: int,
    seed: Optional[int] = None,
    beta: Optional[float] = None,
    parallelism: Optional[int] = None,
) -> ClassicalCycleResult:
    """Classical light/heavy cycle detection, w.p. ≥ 2/3.

    Heavy phase: sample vertices uniformly, evaluate their cycle values in
    groups of p (each group α(p) = p + k rounds plus a D-round drain),
    stop after 3·n^{1−β} samples (Markov cutoff).
    """
    if k < 3:
        raise ValueError("cycle length bound must be >= 3")
    rng = np.random.default_rng(seed)
    k_eff = min(k, 2 * max(network.diameter, 1) + 1)
    if beta is None:
        beta = classical_balanced_beta(network.n, k_eff)
    p = parallelism if parallelism is not None else max(network.diameter, 1)

    light_len, light_rounds = light_cycle_scan(network, k_eff, beta)

    sentinel = k_eff + 1
    budget_samples = math.ceil(3 * network.n ** (1 - beta)) + p
    cache: dict = {}
    best = sentinel
    heavy_rounds = 2 * max(network.diameter, 1)  # leader election + BFS tree
    drawn = 0
    while drawn < budget_samples:
        group = [int(s) for s in rng.integers(0, network.n, size=p)]
        drawn += p
        heavy_rounds += p + k_eff + max(network.diameter, 1)
        for s in group:
            value = cycle_value(network.graph, s, k_eff, cache)
            best = min(best, value)
        if best <= k_eff and drawn >= p:
            # A found cycle is verified and search may stop early —
            # matching the quantum code path's one-sided behaviour.
            break
    heavy_len = best if best <= k_eff else None

    candidates = [l for l in (light_len, heavy_len) if l is not None]
    return ClassicalCycleResult(
        length=min(candidates) if candidates else None,
        rounds=light_rounds + heavy_rounds,
        light_rounds=light_rounds,
        heavy_rounds=heavy_rounds,
        beta=beta,
    )


def compute_girth_classical(
    network: Network,
    seed: Optional[int] = None,
    mu: float = 1.0,
    max_k: Optional[int] = None,
) -> Tuple[Optional[int], int]:
    """Classical geometric girth search (same outer loop as Corollary 26).

    Returns (girth or None, rounds).  The triangle phase is charged at the
    classical Õ(n^{1/3}) bound [CFGGLO20-style] instead of the quantum
    n^{1/5}.
    """
    log_n = max(1, math.ceil(math.log2(max(network.n, 2))))
    rounds = math.ceil(network.n ** (1 / 3)) * log_n
    g = true_girth(network.graph)
    if g == 3:
        return 3, rounds
    limit = max_k if max_k is not None else network.n
    k = 4.0
    while True:
        k_int = min(int(math.floor(k)), limit)
        result = detect_cycle_classical(network, k_int, seed=seed)
        rounds += result.rounds
        if result.length is not None:
            return result.length, rounds
        if k_int >= limit:
            return None, rounds
        k *= 1 + mu
