"""Topology generators used throughout the tests and benchmarks.

All generators return a :class:`~repro.congest.network.Network` with nodes
labelled ``0..n-1``.  Several of these are the exact gadget families used in
the paper's lower-bound arguments (paths with endpoints D apart, two stars
joined at the centers) and upper-bound sweeps (graphs with controlled
diameter, planted cycles, known girth).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import networkx as nx
import numpy as np

from .network import CompleteNetwork, Network


def path(n: int, bandwidth: Optional[int] = None) -> Network:
    """A path on ``n`` nodes — diameter n-1, the canonical lower-bound gadget."""
    return Network(nx.path_graph(n), bandwidth=bandwidth)


def cycle(n: int, bandwidth: Optional[int] = None) -> Network:
    """A cycle on ``n`` nodes — girth n, diameter floor(n/2)."""
    return Network(nx.cycle_graph(n), bandwidth=bandwidth)


def star(n: int, bandwidth: Optional[int] = None) -> Network:
    """A star with center 0 and ``n-1`` leaves — diameter 2."""
    return Network(nx.star_graph(n - 1), bandwidth=bandwidth)


def complete(n: int, bandwidth: Optional[int] = None, comm_model=None) -> Network:
    """The complete graph K_n — diameter 1.

    Returns a :class:`~repro.congest.network.CompleteNetwork`: closed-form
    adjacency/metrics instead of networkx's O(n²) object graph, and a CSR
    fast path, which is what makes CONGEST-CLIQUE benches usable at
    n ≥ 2·10³.  Observationally identical (fingerprint included) to the
    historical ``Network(nx.complete_graph(n))``.
    """
    return CompleteNetwork(n, bandwidth=bandwidth, comm_model=comm_model)


def clique(n: int, bandwidth: Optional[int] = None) -> Network:
    """K_n under the CONGEST-CLIQUE model — the Izumi–Le Gall setting.

    Shorthand for ``complete(n, comm_model="congest-clique")`` with an
    optional per-pair ``bandwidth`` override: every pair of nodes shares
    a logical O(log n)-bit link, and (the physical graph being complete)
    routing charges nothing extra.
    """
    from .models import CongestCliqueModel

    model = (
        CongestCliqueModel() if bandwidth is None
        else CongestCliqueModel(bandwidth=bandwidth)
    )
    return CompleteNetwork(n, comm_model=model)


def grid(rows: int, cols: int, bandwidth: Optional[int] = None) -> Network:
    """A rows×cols grid — diameter rows+cols-2."""
    g = nx.grid_2d_graph(rows, cols)
    mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)


def balanced_tree(branching: int, height: int, bandwidth: Optional[int] = None) -> Network:
    """A perfect branching tree — acyclic, diameter 2·height."""
    return Network(nx.balanced_tree(branching, height), bandwidth=bandwidth)


def random_regular(
    n: int, degree: int, seed: Optional[int] = None, bandwidth: Optional[int] = None
) -> Network:
    """A connected random regular graph (resamples until connected)."""
    rng = np.random.default_rng(seed)
    for _ in range(100):
        g = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
        if nx.is_connected(g):
            return Network(g, bandwidth=bandwidth)
    raise RuntimeError(f"could not sample a connected {degree}-regular graph on {n} nodes")


def erdos_renyi(
    n: int, p: float, seed: Optional[int] = None, bandwidth: Optional[int] = None
) -> Network:
    """A connected G(n, p) sample (resamples until connected)."""
    rng = np.random.default_rng(seed)
    for _ in range(200):
        g = nx.gnp_random_graph(n, p, seed=int(rng.integers(2**31)))
        if g.number_of_nodes() and nx.is_connected(g):
            return Network(g, bandwidth=bandwidth)
    raise RuntimeError(f"could not sample a connected G({n},{p})")


def lollipop(clique_size: int, tail_length: int, bandwidth: Optional[int] = None) -> Network:
    """A clique with a path tail — small radius at the clique, large diameter."""
    return Network(nx.lollipop_graph(clique_size, tail_length), bandwidth=bandwidth)


def barbell(bell_size: int, bar_length: int, bandwidth: Optional[int] = None) -> Network:
    """Two cliques joined by a path — a classic congestion stressor."""
    return Network(nx.barbell_graph(bell_size, bar_length), bandwidth=bandwidth)


def two_stars(
    leaves_a: int, leaves_b: int, bandwidth: Optional[int] = None
) -> Network:
    """Two stars joined by an edge between their centers.

    This is the Lemma 15 lower-bound gadget: players A and B simulate one
    star each, and all communication crosses the single center–center edge.
    Center of star A is node 0, center of star B is node 1; A's leaves come
    first.
    """
    g = nx.Graph()
    g.add_edge(0, 1)
    next_id = 2
    for _ in range(leaves_a):
        g.add_edge(0, next_id)
        next_id += 1
    for _ in range(leaves_b):
        g.add_edge(1, next_id)
        next_id += 1
    return Network(g, bandwidth=bandwidth)


def path_with_endpoints(
    distance: int, bandwidth: Optional[int] = None
) -> Network:
    """A path of the given hop ``distance`` between its two endpoints.

    The Lemma 11/13 and Theorem 18 gadget: inputs sit at nodes 0 and
    ``distance``; everything between is a relay.
    """
    return Network(nx.path_graph(distance + 1), bandwidth=bandwidth)


def diameter_controlled(
    n: int, diameter: int, seed: Optional[int] = None, bandwidth: Optional[int] = None
) -> Network:
    """A connected n-node graph whose diameter is close to the target.

    Built as a path backbone of length ``diameter`` with the remaining
    nodes attached in balanced dense clusters along it.  Used by benchmarks
    that sweep D independently of n (E7, E8, E10).
    """
    if diameter < 1:
        raise ValueError("diameter must be >= 1")
    if n < diameter + 1:
        raise ValueError(f"need n >= diameter+1, got n={n}, D={diameter}")
    g = nx.path_graph(diameter + 1)
    rng = np.random.default_rng(seed)
    backbone = list(range(diameter + 1))
    cluster_members = {anchor: [anchor] for anchor in backbone}
    for i, v in enumerate(range(diameter + 1, n)):
        # Attach each extra node into a dense cluster around one backbone
        # anchor; clusters stay within one hop of their anchor, so the
        # backbone path still realizes the diameter (±2).
        anchor = backbone[i % len(backbone)]
        g.add_edge(v, anchor)
        peer = cluster_members[anchor][int(rng.integers(0, len(cluster_members[anchor])))]
        if peer != anchor:
            g.add_edge(v, peer)
        cluster_members[anchor].append(v)
    return Network(g, bandwidth=bandwidth)


def planted_cycle(
    n: int,
    cycle_length: int,
    seed: Optional[int] = None,
    bandwidth: Optional[int] = None,
) -> Network:
    """A sparse graph containing a (shortest) cycle of the given length.

    A cycle C_l on nodes ``0..l-1`` with the remaining nodes hung off it as
    trees, so the planted cycle is the unique cycle and hence the girth.
    """
    if cycle_length < 3 or cycle_length > n:
        raise ValueError("need 3 <= cycle_length <= n")
    g = nx.cycle_graph(cycle_length)
    rng = np.random.default_rng(seed)
    for v in range(cycle_length, n):
        g.add_edge(v, int(rng.integers(0, v)))
    return Network(g, bandwidth=bandwidth)


def known_girth(
    girth: int, copies: int = 1, tail: int = 0, bandwidth: Optional[int] = None
) -> Network:
    """A graph of exactly the given girth: ``copies`` cycles sharing a hub path.

    Cycles of length ``girth`` are chained by single edges; optional path
    ``tail`` stretches the diameter without adding cycles.
    """
    if girth < 3:
        raise ValueError("girth must be >= 3")
    g = nx.Graph()
    next_id = 0
    anchors = []
    for _ in range(copies):
        cyc = list(range(next_id, next_id + girth))
        next_id += girth
        g.add_edges_from(zip(cyc, cyc[1:] + cyc[:1]))
        anchors.append(cyc[0])
    for a, b in zip(anchors, anchors[1:]):
        g.add_edge(a, b)
    prev = anchors[-1]
    for _ in range(tail):
        g.add_edge(prev, next_id)
        prev = next_id
        next_id += 1
    mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)


def petersen(bandwidth: Optional[int] = None) -> Network:
    """The Petersen graph — girth 5, diameter 2, 3-regular.  A classic test case."""
    return Network(nx.petersen_graph(), bandwidth=bandwidth)


def bipartite_incidence(k: int, bandwidth: Optional[int] = None) -> Network:
    """Incidence graph of a k×k grid of points and lines — girth 8 family."""
    g = nx.Graph()
    for i, j in itertools.product(range(k), range(k)):
        point = i * k + j
        row_line = k * k + i
        col_line = k * k + k + j
        g.add_edge(point, row_line)
        g.add_edge(point, col_line)
    mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)


def hypercube(dimension: int, bandwidth: Optional[int] = None) -> Network:
    """The d-dimensional hypercube — n = 2^d, diameter d, log-degree."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    g = nx.hypercube_graph(dimension)
    mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)


def torus(rows: int, cols: int, bandwidth: Optional[int] = None) -> Network:
    """A rows×cols torus (wrap-around grid) — 4-regular, diameter ⌊r/2⌋+⌊c/2⌋."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
    return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)


def expander(
    n: int, seed: Optional[int] = None, bandwidth: Optional[int] = None
) -> Network:
    """A 3-regular expander-like graph — O(log n) diameter at constant degree.

    Sampled as a random 3-regular graph (a.a.s. an expander); resampled
    until connected.  The diameter-vs-size profile makes it the natural
    "small D, large n" family where the paper's √(nD) bounds shine.
    """
    if n < 4 or n % 2:
        raise ValueError("need even n >= 4 for a 3-regular graph")
    return random_regular(n, 3, seed=seed, bandwidth=bandwidth)
