"""CSR adjacency: the column-major view of a :class:`Network`.

The vectorized engine schedule (``Engine(schedule="vectorized")``) executes
whole rounds as numpy array operations.  Its substrate is the standard
compressed-sparse-row adjacency: ``indices[indptr[v]:indptr[v+1]]`` are the
(sorted) neighbors of ``v``, and every *directed* edge ``v -> u`` has an
edge id ``e`` in that slice.  ``rev[e]`` is the id of the reverse edge
``u -> v``, which is how bulk programs answer "did the node I am about to
token also token me this round?" without per-node Python.

Building the arrays is O(n + m) but still a Python-level loop over the
adjacency dict, so it is cached two ways:

* a :class:`weakref.WeakKeyDictionary` keyed by the ``Network`` *object*
  (the engine fast path: repeated runs on one network pay a dict lookup),
  guarded by a cheap ``(n, m, bandwidth)`` recheck, and
* a bounded LRU keyed by the **topology fingerprint** (distinct Network
  objects with identical edge sets share one build — the same keying the
  :class:`~repro.core.framework.PreparedCache` uses, which stores the CSR
  on its :class:`~repro.core.framework.PreparedNetwork` entries).

The weak fast path deliberately does not recompute the fingerprint (that
walk is as expensive as the build it would save); an in-place graph
mutation that preserves ``n``, ``m`` *and* ``bandwidth`` is therefore not
detected here — it is detected by the
:class:`~repro.core.framework.StalePreparedNetworkError` tripwire the
first time the mutated network goes through ``prepare_network``, which is
the documented mutation contract (DESIGN.md §6h).  Mutations that change
the edge *count* miss the weak entry and rebuild correctly.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .network import Network

#: Default entry bound of the fingerprint-keyed LRU.  CSR arrays are
#: O(n + m) ints; a daemon cycling through topologies keeps the hottest
#: few dozen without growing without bound.
DEFAULT_CSR_CACHE_ENTRIES = 64


@dataclass(frozen=True)
class CSRAdjacency:
    """Immutable CSR arrays for one network topology.

    Attributes:
        n: node count.
        indptr: ``(n+1,)`` int64; node ``v``'s out-edges are ids
            ``indptr[v]..indptr[v+1]``.
        indices: ``(2m,)`` int64; ``indices[e]`` is the head (destination)
            of directed edge ``e``.  Per node, heads are sorted ascending
            (matching ``Network.neighbors``).
        src: ``(2m,)`` int64; ``src[e]`` is the tail of edge ``e``
            (the expanded row index — handy for per-edge gathers).
        rev: ``(2m,)`` int64; ``rev[e]`` is the edge id of the reverse
            directed edge, an involution (``rev[rev[e]] == e``).
        fingerprint: the topology fingerprint the arrays were built from.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    src: np.ndarray
    rev: np.ndarray
    fingerprint: str

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def edge_id(self, u: int, v: int) -> int:
        """The directed edge id of ``u -> v`` (binary search per node)."""
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        e = lo + int(np.searchsorted(self.indices[lo:hi], v))
        if e >= hi or int(self.indices[e]) != v:
            raise KeyError(f"no edge {u}->{v}")
        return e


def _build_csr_complete(
    network: Network, fingerprint: Optional[str]
) -> CSRAdjacency:
    """CSR of a complete graph, fully vectorized (no Python edge loop).

    Every row is ``0..n-1`` minus the diagonal, so ``indices`` is a
    masked broadcast and ``rev`` is the closed form
    ``id(v→u) = v·(n−1) + (u − [u > v])`` — no lexsort over the 2m
    directed edges.  This is what makes CLIQUE benches usable at
    n ≥ 2·10³ (the generic path's per-node Python loop is O(n²) there).
    """
    n = network.n
    a = np.arange(n, dtype=np.int64)
    indptr = np.arange(n + 1, dtype=np.int64) * (n - 1)
    mat = np.broadcast_to(a, (n, n))
    indices = mat[~np.eye(n, dtype=bool)]
    src = np.repeat(a, n - 1)
    rev = indices * (n - 1) + src - (src > indices)
    if fingerprint is None:
        fingerprint = network.topology_fingerprint()
    return CSRAdjacency(
        n=n, indptr=indptr, indices=indices, src=src, rev=rev,
        fingerprint=fingerprint,
    )


def build_csr(network: Network, fingerprint: Optional[str] = None) -> CSRAdjacency:
    """Build the CSR arrays from a network's adjacency (uncached)."""
    n = network.n
    if getattr(network, "is_complete", False) and n > 1:
        return _build_csr_complete(network, fingerprint)
    degrees = np.fromiter(
        (len(network.neighbors(v)) for v in range(n)), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    pos = 0
    for v in range(n):
        nbrs = network.neighbors(v)  # already sorted ascending
        indices[pos:pos + len(nbrs)] = nbrs
        pos += len(nbrs)
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # rev[e]: position of (indices[e] -> src[e]).  Edge ids sorted by
    # (src, dst); the reverse edge's id is found by ranking the pairs
    # (dst, src) in that same order.
    order = np.lexsort((src, indices))  # sorts by (indices, src) = (dst, src)
    rev = np.empty(total, dtype=np.int64)
    rev[order] = np.arange(total, dtype=np.int64)
    if fingerprint is None:
        fingerprint = network.topology_fingerprint()
    return CSRAdjacency(
        n=n, indptr=indptr, indices=indices, src=src, rev=rev,
        fingerprint=fingerprint,
    )


class CSRCache:
    """Two-level CSR cache: weak per-object fast path + fingerprint LRU."""

    def __init__(self, max_entries: Optional[int] = DEFAULT_CSR_CACHE_ENTRIES):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when set")
        self.max_entries = max_entries
        #: network object -> (n, m, bandwidth, model_key, csr); the
        #: cheap-recheck keys catch any in-place mutation that changes
        #: the edge count *and* any communication-model swap — two
        #: models over the same graph must never share a CSR entry
        #: (their fingerprints differ, so the LRU already separates
        #: them; the model key keeps the object fast path honest too).
        self._weak: "weakref.WeakKeyDictionary[Network, Tuple]" = (
            weakref.WeakKeyDictionary()
        )
        self._lru: "OrderedDict[str, CSRAdjacency]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def get(
        self, network: Network, fingerprint: Optional[str] = None
    ) -> CSRAdjacency:
        """The CSR for ``network``, building (and caching) on miss.

        ``fingerprint`` lets callers that already computed the topology
        fingerprint (``PreparedCache.prepare`` does, for its own tripwire)
        share it instead of paying the edge walk twice.
        """
        entry = self._weak.get(network)
        if entry is not None:
            n, m, bw, model_key, csr = entry
            if (n, m, bw, model_key) == (
                network.n, network.m, network.bandwidth,
                network.model.cache_key,
            ):
                self.hits += 1
                return csr
            # In-place mutation changed the shape (or the model was
            # swapped): drop the stale entry.
            del self._weak[network]
        if fingerprint is None:
            fingerprint = network.topology_fingerprint()
        csr = self._lru.get(fingerprint)
        if csr is not None:
            self._lru.move_to_end(fingerprint)
            self.hits += 1
        else:
            self.misses += 1
            csr = build_csr(network, fingerprint=fingerprint)
            self._lru[fingerprint] = csr
            if self.max_entries is not None and len(self._lru) > self.max_entries:
                self._lru.popitem(last=False)
                self.evictions += 1
        self._weak[network] = (
            network.n, network.m, network.bandwidth,
            network.model.cache_key, csr,
        )
        return csr

    def invalidate(self, network: Optional[Network] = None) -> None:
        """Drop cached CSR state — for one network, or all of it."""
        if network is None:
            self._weak = weakref.WeakKeyDictionary()
            self._lru.clear()
            return
        entry = self._weak.pop(network, None)
        if entry is not None:
            self._lru.pop(entry[-1].fingerprint, None)
        self._lru.pop(network.topology_fingerprint(), None)

    def stats(self) -> Dict[str, Optional[int]]:
        return {
            "entries": len(self._lru),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide CSR cache behind :func:`csr_for`.
_CSR_CACHE = CSRCache()


def csr_for(network: Network, fingerprint: Optional[str] = None) -> CSRAdjacency:
    """The (cached) CSR adjacency of ``network``."""
    return _CSR_CACHE.get(network, fingerprint=fingerprint)


def invalidate_csr(network: Optional[Network] = None) -> None:
    """Drop cached CSR state — for one network, or all of them."""
    _CSR_CACHE.invalidate(network)


def csr_cache_stats() -> Dict[str, Optional[int]]:
    """Hit/miss/eviction counters of the process-wide CSR cache."""
    return _CSR_CACHE.stats()


def configure_csr_cache(max_entries: Optional[int]) -> None:
    """Re-bound the process-wide CSR cache (None = unbounded)."""
    if max_entries is not None and max_entries < 1:
        raise ValueError("max_entries must be positive when set")
    _CSR_CACHE.max_entries = max_entries
    while max_entries is not None and len(_CSR_CACHE._lru) > max_entries:
        _CSR_CACHE._lru.popitem(last=False)
        _CSR_CACHE.evictions += 1
