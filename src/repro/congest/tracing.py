"""Execution tracing for the CONGEST engine.

Production distributed systems ship with observability; this module adds
it to the simulator.  A :class:`TracingEngine` records every message as a
:class:`TraceEvent` and can render a per-edge timeline — which is also the
clearest way to *see* the paper's pipelining arguments (Lemma 7, Theorem 8):
chunks marching down a path one round apart instead of in D-round waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .engine import Engine, RunResult
from .network import Network
from .program import NodeProgram


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    round_no: int
    src: int
    dst: int
    bits: int
    value: Any


@dataclass
class Trace:
    """All events of one run, with query helpers."""

    events: List[TraceEvent] = field(default_factory=list)

    def rounds_used(self) -> int:
        return max((e.round_no for e in self.events), default=0)

    def events_in_round(self, round_no: int) -> List[TraceEvent]:
        return [e for e in self.events if e.round_no == round_no]

    def events_on_edge(self, src: int, dst: int) -> List[TraceEvent]:
        return [e for e in self.events if e.src == src and e.dst == dst]

    def busiest_round(self) -> Tuple[int, int]:
        """(round, message count) of the most congested round."""
        counts: Dict[int, int] = {}
        for e in self.events:
            counts[e.round_no] = counts.get(e.round_no, 0) + 1
        if not counts:
            return (0, 0)
        round_no = max(counts, key=counts.get)
        return (round_no, counts[round_no])

    def edge_utilization(self, src: int, dst: int) -> float:
        """Fraction of rounds the directed edge carried a message."""
        total = self.rounds_used()
        if total == 0:
            return 0.0
        return len(self.events_on_edge(src, dst)) / total

    def total_bits(self) -> int:
        return sum(e.bits for e in self.events)

    def render_timeline(
        self, edges: List[Tuple[int, int]], max_rounds: Optional[int] = None
    ) -> str:
        """ASCII timeline: one row per directed edge, '#' = message sent."""
        horizon = min(self.rounds_used(), max_rounds or self.rounds_used())
        lines = []
        header = "edge      " + "".join(
            str(r % 10) for r in range(1, horizon + 1)
        )
        lines.append(header)
        for src, dst in edges:
            busy = {e.round_no for e in self.events_on_edge(src, dst)}
            row = "".join(
                "#" if r in busy else "." for r in range(1, horizon + 1)
            )
            lines.append(f"{src:>3}->{dst:<3}  {row}")
        return "\n".join(lines)


class TracingEngine(Engine):
    """An :class:`Engine` that records every delivered message."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = Trace()

    def run(self) -> RunResult:  # noqa: D102 - documented on Engine
        # Wrap message draining by observing contexts after each round via
        # the parent loop; simplest correct hook: replay parent run but
        # intercept through the contexts' outboxes.  The parent implements
        # the loop, so instead we shadow it here with tracing inlined.
        from .messages import Inbox, Message, TrafficStats

        stats = TrafficStats()
        in_flight: List[Message] = []

        for v, program in self.programs.items():
            ctx = self.contexts[v]
            program.on_start(ctx)
            in_flight.extend(ctx._drain_outbox(0))

        rounds = 0
        while True:
            if not in_flight and (self._all_halted() or self.stop_on_quiescence):
                break
            if rounds >= self.max_rounds:
                from .errors import RoundLimitExceeded

                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1

            inboxes: Dict[int, List[Message]] = {}
            for msg in in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
                self.trace.events.append(
                    TraceEvent(
                        round_no=rounds,
                        src=msg.src,
                        dst=msg.dst,
                        bits=msg.bits,
                        value=msg.value,
                    )
                )
            stats.record_round(len(in_flight), sum(m.bits for m in in_flight))
            in_flight = []

            for v, program in self.programs.items():
                ctx = self.contexts[v]
                if ctx.halted:
                    continue
                ctx.round = rounds
                program.on_round(ctx, Inbox(inboxes.get(v)))
                in_flight.extend(ctx._drain_outbox(rounds))

        outputs = {v: self.contexts[v].output for v in self.network.nodes()}
        return RunResult(rounds=rounds, outputs=outputs, stats=stats)


def run_traced(
    network: Network,
    programs: Dict[int, NodeProgram],
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
) -> Tuple[RunResult, Trace]:
    """Run programs under tracing; return (result, trace)."""
    engine = TracingEngine(
        network,
        programs,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
    )
    result = engine.run()
    return result, engine.trace
