"""Execution tracing for the CONGEST engine.

Production distributed systems ship with observability; this module adds
it to the simulator.  A :class:`TracingEngine` records every message as a
:class:`TraceEvent` and can render a per-edge timeline — which is also the
clearest way to *see* the paper's pipelining arguments (Lemma 7, Theorem 8):
chunks marching down a path one round apart instead of in D-round waves.

Events carry a ``kind`` so that fault injection (:mod:`repro.faults`) can
record drops, corruptions, delays, crashes, and recoveries as first-class
trace events next to ordinary deliveries; timelines mark them with
distinct symbols so a lossy run's retransmissions are visible at a glance.

Since the observability spine (:mod:`repro.obs`) landed, tracing is a
*sink*: the engine emits ``deliver``/``fault`` events on its recorder and
:class:`TraceSink` rebuilds the :class:`Trace` from them.
:class:`TracingEngine` is a thin shim — an :class:`~repro.congest.engine.
Engine` constructed with a :class:`TraceSink` attached — kept for its
established API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.events import DELIVER as OBS_DELIVER
from ..obs.events import FAULT as OBS_FAULT
from ..obs.recorder import Recorder, current_recorder
from ..obs.sinks import Sink
from .engine import Engine, RunResult
from .network import Network
from .program import NodeProgram

#: Event kinds recorded in traces.  ``DELIVER`` is an ordinary delivery;
#: the rest are fault events emitted by :class:`repro.faults.FaultyEngine`.
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"
DELAY = "delay"
CRASH = "crash"
RECOVER = "recover"

#: Timeline symbol per event kind, in decreasing display priority.
_TIMELINE_SYMBOLS = ((DROP, "x"), (CORRUPT, "!"), (DELAY, "~"), (DELIVER, "#"))


@dataclass(frozen=True)
class TraceEvent:
    """One traced event: a delivered message or an injected fault.

    ``kind`` is :data:`DELIVER` for ordinary deliveries.  Fault kinds use
    the same (round, src, dst) coordinates; node-level events (``crash``,
    ``recover``) set ``src == dst`` to the affected node.
    """

    round_no: int
    src: int
    dst: int
    bits: int
    value: Any
    kind: str = DELIVER


@dataclass
class Trace:
    """All events of one run, with query helpers.

    The aggregate helpers (:meth:`busiest_round`, :meth:`total_bits`,
    :meth:`edge_utilization`, …) count *deliveries* only; fault events are
    reachable through :meth:`faults` and :meth:`events_of_kind`.
    """

    events: List[TraceEvent] = field(default_factory=list)

    def deliveries(self) -> List[TraceEvent]:
        """The ordinary message-delivery events."""
        return [e for e in self.events if e.kind == DELIVER]

    def faults(self) -> List[TraceEvent]:
        """Every non-delivery (fault) event."""
        return [e for e in self.events if e.kind != DELIVER]

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one ``kind`` (e.g. ``"drop"``)."""
        return [e for e in self.events if e.kind == kind]

    def rounds_used(self) -> int:
        """Largest round number appearing in any event."""
        return max((e.round_no for e in self.events), default=0)

    def events_in_round(self, round_no: int) -> List[TraceEvent]:
        """Delivery events of one round."""
        return [
            e for e in self.events
            if e.round_no == round_no and e.kind == DELIVER
        ]

    def events_on_edge(self, src: int, dst: int) -> List[TraceEvent]:
        """Delivery events on one directed edge."""
        return [
            e for e in self.events
            if e.src == src and e.dst == dst and e.kind == DELIVER
        ]

    def busiest_round(self) -> Tuple[int, int]:
        """(round, message count) of the most congested round.

        Ties break deterministically: among rounds with the maximal
        delivery count, the *lowest* round number wins, regardless of
        the order events were recorded in.
        """
        counts: Dict[int, int] = {}
        for e in self.deliveries():
            counts[e.round_no] = counts.get(e.round_no, 0) + 1
        if not counts:
            return (0, 0)
        round_no = min(counts, key=lambda r: (-counts[r], r))
        return (round_no, counts[round_no])

    def edge_utilization(self, src: int, dst: int) -> float:
        """Fraction of rounds the directed edge carried a message."""
        total = self.rounds_used()
        if total == 0:
            return 0.0
        return len(self.events_on_edge(src, dst)) / total

    def total_bits(self) -> int:
        """Total delivered payload bits."""
        return sum(e.bits for e in self.deliveries())

    def render_timeline(
        self, edges: List[Tuple[int, int]], max_rounds: Optional[int] = None
    ) -> str:
        """ASCII timeline: one row per directed edge.

        ``#`` = delivered, ``x`` = dropped, ``!`` = corrupted,
        ``~`` = delayed (held by the channel that round).
        """
        horizon = min(self.rounds_used(), max_rounds or self.rounds_used())
        lines = []
        header = "edge      " + "".join(
            str(r % 10) for r in range(1, horizon + 1)
        )
        lines.append(header)
        for src, dst in edges:
            by_round: Dict[int, str] = {}
            for kind, symbol in reversed(_TIMELINE_SYMBOLS):
                for e in self.events:
                    if e.src == src and e.dst == dst and e.kind == kind:
                        by_round[e.round_no] = symbol
            row = "".join(
                by_round.get(r, ".") for r in range(1, horizon + 1)
            )
            lines.append(f"{src:>3}->{dst:<3}  {row}")
        return "\n".join(lines)


class TraceSink(Sink):
    """Rebuilds a :class:`Trace` from spine ``deliver``/``fault`` events.

    The in-memory Trace-compatible sink: attach it to any recorder and
    every engine delivery and injected fault lands in ``self.trace``
    exactly as :class:`TracingEngine` has always recorded them.  Other
    event kinds (rounds, query batches, charges, spans) are ignored.
    """

    def __init__(self, trace: Optional[Trace] = None):
        self.trace = trace if trace is not None else Trace()

    def handle(self, event) -> None:
        kind = event.kind
        if kind == OBS_DELIVER:
            self.trace.events.append(
                TraceEvent(
                    round_no=event.round_no,
                    src=event.src,
                    dst=event.dst,
                    bits=event.bits,
                    value=event.value,
                )
            )
        elif kind == OBS_FAULT:
            self.trace.events.append(
                TraceEvent(
                    round_no=event.round_no,
                    src=event.src,
                    dst=event.dst,
                    bits=event.bits,
                    value=event.value,
                    kind=event.fault,
                )
            )


class TracingEngine(Engine):
    """An :class:`Engine` that records every delivered message.

    A thin shim over the observability spine: construction attaches a
    :class:`TraceSink` to the engine's recorder (forking the passed or
    ambient recorder so any other installed sinks keep receiving events),
    and ``self.trace`` is that sink's trace.
    :class:`repro.faults.FaultyEngine` extends this class; its fault
    events flow through the same bus into the same trace.
    """

    def __init__(self, *args, recorder: Optional[Recorder] = None, **kwargs):
        base = recorder if recorder is not None else current_recorder()
        sink = TraceSink()
        super().__init__(*args, recorder=base.fork(sink), **kwargs)
        self.trace = sink.trace


def run_traced(
    network: Network,
    programs: Dict[int, NodeProgram],
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
    recorder: Optional[Recorder] = None,
) -> Tuple[RunResult, Trace]:
    """Run programs under tracing; return (result, trace)."""
    engine = TracingEngine(
        network,
        programs,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
        recorder=recorder,
    )
    result = engine.run()
    return result, engine.trace
