"""Error types for the CONGEST simulation substrate.

The engine distinguishes between *model violations* (an algorithm breaking
the rules of the CONGEST model, e.g. oversized messages or sending to a
non-neighbor) and ordinary *engine errors* (misconfiguration, exceeding the
round budget).  Tests rely on this distinction: a model violation always
means the algorithm under test is wrong, never the harness.
"""

from __future__ import annotations


class CongestError(Exception):
    """Base class for all errors raised by the CONGEST substrate."""


class ModelViolation(CongestError):
    """An algorithm broke the rules of the CONGEST model."""


class BandwidthExceeded(ModelViolation):
    """A message was larger than the per-edge per-round bandwidth.

    Attributes:
        src: sender node id.
        dst: receiver node id.
        bits: declared size of the offending message in bits.
        bandwidth: the per-edge bandwidth limit in bits.
    """

    def __init__(self, src: int, dst: int, bits: int, bandwidth: int):
        self.src = src
        self.dst = dst
        self.bits = bits
        self.bandwidth = bandwidth
        super().__init__(
            f"message {src}->{dst} of {bits} bits exceeds the "
            f"{bandwidth}-bit CONGEST bandwidth"
        )


class MessageTooLargeError(BandwidthExceeded):
    """A message exceeded the communication model's per-link budget.

    Subclass of :class:`BandwidthExceeded` so code written against the
    historical CONGEST-only hierarchy keeps catching it; the extra
    ``model`` attribute names the communication model whose admission
    rule rejected the message (e.g. ``"congest-clique"`` when a logical
    clique pair went over its per-round O(log n) allowance).
    """

    def __init__(
        self, src: int, dst: int, bits: int, bandwidth: int, model: str = ""
    ):
        super().__init__(src, dst, bits, bandwidth)
        self.model = model
        if model:
            self.args = (
                f"message {src}->{dst} of {bits} bits exceeds the "
                f"{bandwidth}-bit per-link budget of the {model} model",
            )


class NotANeighbor(ModelViolation):
    """A node tried to send a message to a node it is not adjacent to."""

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        super().__init__(f"node {src} attempted to send to non-neighbor {dst}")


class DuplicateSend(ModelViolation):
    """A node sent two messages over the same edge in one round.

    The CONGEST model allows one message per edge direction per round; a
    program that needs to send more must either pack the payload (subject to
    the bandwidth limit) or spread it over several rounds.
    """

    def __init__(self, src: int, dst: int, round_no: int):
        self.src = src
        self.dst = dst
        self.round_no = round_no
        super().__init__(
            f"node {src} sent twice to {dst} in round {round_no}"
        )


class RoundLimitExceeded(CongestError):
    """The engine ran past its configured maximum number of rounds."""

    def __init__(self, max_rounds: int):
        self.max_rounds = max_rounds
        super().__init__(f"execution exceeded the {max_rounds}-round budget")


class HaltedNodeActed(CongestError):
    """Internal invariant failure: a halted node produced output."""
