"""Pluggable communication models: CONGEST, CONGEST-CLIQUE, LOCAL.

The engine used to hard-code one set of communication rules — the
CONGEST model's "physical neighbors only, O(log n) bits per edge per
round".  This module abstracts those rules behind a :class:`CommModel`
so new workload families can swap them without touching the round loop:

* :class:`CongestModel` — the historical default, byte-for-byte: a node
  may message its physical neighbors, every message is capped at the
  per-edge bandwidth (``4·⌈log2 n⌉ + 16`` bits unless overridden).
* :class:`CongestCliqueModel` — the CONGEST-CLIQUE model of
  [Izumi–Le Gall, arXiv:1906.02456]: *every* pair of nodes shares a
  logical link of O(log n) bits per round, regardless of the physical
  graph.  Messages between physically non-adjacent nodes are routed
  over the physical topology and the extra relay traffic is charged to
  the engine's bit statistics (``route_hops``), so clique runs over a
  sparse physical graph surface their true transport cost.
* :class:`LocalModel` — the LOCAL model
  [Le Gall–Nishimura–Rosmanis, arXiv:1810.10838]: physical neighbors
  only, but message size is *unbounded* (``bandwidth is None``), which
  is how LOCAL-vs-CONGEST separations are expressed.

A model pins down four things, each consumed by a different layer:

1. **connectivity** — :meth:`CommModel.peers`: whom a node may message
   (drives the :class:`~repro.congest.program.Context` handed to node
   programs);
2. **bandwidth** — :meth:`CommModel.resolve_bandwidth`: the per-link
   per-round bit cap, ``None`` for unbounded (enforced at
   ``Context.send`` time, raising
   :class:`~repro.congest.errors.MessageTooLargeError`);
3. **admission** — :meth:`CommModel.admit`: the one-call validation
   seam combining both rules (used by tests, tooling, and any transport
   that bypasses ``Context.send``);
4. **cost accounting** — :meth:`CommModel.router`: an optional
   per-round routing biller (CLIQUE charges relay hops; CONGEST and
   LOCAL deliver over physical edges and need none).

Identity plumbing: :attr:`CommModel.cache_key` feeds the network
topology fingerprint and the CSR cache keys, so two models over the
same graph never share cached state; :attr:`CommModel.event_token`
stamps observability round/charge events (empty for the default CONGEST
model, keeping pre-refactor trace streams byte-identical).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from .encoding import bits_for_domain
from .errors import CongestError, MessageTooLargeError, NotANeighbor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .network import Network

#: Default bandwidth allowance, as a multiple of ceil(log2 n).  CONGEST
#: messages are O(log n) bits; proofs in the paper pack a constant number
#: of identifiers/distances per message, so we allow 4 log-n-sized fields
#: plus a small tag budget by default.
DEFAULT_LOG_FACTOR = 4
DEFAULT_TAG_BITS = 16


def default_bandwidth(n: int) -> int:
    """The historical CONGEST default: ``4·⌈log2 n⌉ + 16`` bits."""
    return DEFAULT_LOG_FACTOR * bits_for_domain(max(n, 2)) + DEFAULT_TAG_BITS


class Router:
    """Per-round transport biller attached by models that route messages.

    The engine calls :meth:`extra_bits` once per round with the round's
    delivered messages; the return value is *added* to the round's bit
    statistic.  Models whose logical links coincide with physical edges
    (CONGEST, LOCAL) attach no router and pay nothing.
    """

    def extra_bits(self, delivered) -> int:
        """Additional transport bits this round's deliveries cost."""
        raise NotImplementedError


class CliqueRouter(Router):
    """Charges CLIQUE logical links routed over the physical graph.

    A logical message ``src -> dst`` physically traverses
    ``hops(src, dst)`` edges; the first hop is already counted by the
    engine's per-message bit accounting, so the router bills
    ``bits · (hops - 1)`` extra.  Hop counts are BFS distances over the
    physical graph, computed lazily one source at a time and cached for
    the network's lifetime (clique programs tend to reuse pairs).
    """

    def __init__(self, network: "Network"):
        self.network = network
        self._dist: Dict[int, Dict[int, int]] = {}

    def hops(self, src: int, dst: int) -> int:
        """Physical hop count of the logical link ``src -> dst``."""
        if src == dst:
            return 0
        dist = self._dist.get(src)
        if dist is None:
            dist = self._bfs(src)
            self._dist[src] = dist
        return dist[dst]

    def _bfs(self, src: int) -> Dict[int, int]:
        dist = {src: 0}
        frontier = deque([src])
        neighbors = self.network.neighbors
        while frontier:
            u = frontier.popleft()
            du = dist[u]
            for w in neighbors(u):
                if w not in dist:
                    dist[w] = du + 1
                    frontier.append(w)
        return dist

    def extra_bits(self, delivered) -> int:
        total = 0
        for msg in delivered:
            total += msg.bits * (self.hops(msg.src, msg.dst) - 1)
        return total


@dataclass(frozen=True)
class CommModel:
    """Abstract communication model: connectivity + bandwidth + billing.

    Concrete models are small frozen dataclasses, so they compare and
    hash structurally and are safe to share across networks, cache keys,
    and process-pool pickles.
    """

    #: Short stable identifier (``"congest"``, ``"congest-clique"``,
    #: ``"local"``) used by registries and config fields.
    name = "abstract"

    def resolve_bandwidth(self, n: int) -> Optional[int]:
        """Per-link per-round bit cap for an n-node network (None = ∞)."""
        raise NotImplementedError

    def peers(self, network: "Network", v: int) -> Tuple[int, ...]:
        """The nodes ``v`` may message, ascending (the connectivity rule)."""
        raise NotImplementedError

    def is_peer(self, network: "Network", src: int, dst: int) -> bool:
        """Whether the logical link ``src -> dst`` exists under this model."""
        raise NotImplementedError

    def admit(self, network: "Network", src: int, dst: int, bits: int) -> None:
        """The message-admission check: one call validating both rules.

        Raises :class:`~repro.congest.errors.NotANeighbor` when the
        logical link does not exist and
        :class:`~repro.congest.errors.MessageTooLargeError` when the
        message exceeds the link's per-round budget.  A message that
        returns without raising is admissible this round (modulo the
        one-message-per-link rule, which is per-round state the
        :class:`~repro.congest.program.Context` owns).
        """
        if not self.is_peer(network, src, dst):
            raise NotANeighbor(src, dst)
        cap = network.bandwidth
        if cap is not None and bits > cap:
            raise MessageTooLargeError(src, dst, bits, cap, model=self.name)

    def router(self, network: "Network") -> Optional[Router]:
        """A per-round transport biller, or None when links are physical."""
        return None

    @property
    def cache_key(self) -> str:
        """Stable token separating per-model cached state (CSR, setup)."""
        return self.name

    @property
    def event_token(self) -> str:
        """The ``model`` field stamped on obs round/charge events.

        Empty for the default CONGEST model so pre-refactor trace
        streams stay byte-identical; concrete non-default models return
        their :attr:`name`.
        """
        return self.name

    @property
    def csr_port(self) -> bool:
        """Whether the vectorized engine's CSR bulk path may run.

        The column-major loop assumes physical-edge delivery with a
        uniform per-message bit size; models that route over logical
        links (or meter differently) return False and the engine falls
        back to the per-node path, recording the reason.
        """
        return False


@dataclass(frozen=True)
class CongestModel(CommModel):
    """The classical CONGEST model — the byte-for-byte default.

    Physical neighbors only; every message capped at ``bandwidth`` bits
    (``4·⌈log2 n⌉ + 16`` when left at None, the historical default).
    An engine run under this model is bit-identical — rounds, outputs,
    traffic statistics, and observability event streams — to the
    pre-model-layer engine, which the hypothesis suite in
    ``tests/property/test_prop_models.py`` pins.
    """

    bandwidth: Optional[int] = None

    name = "congest"

    def __post_init__(self):
        if self.bandwidth is not None and self.bandwidth < 1:
            raise CongestError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )

    def resolve_bandwidth(self, n: int) -> Optional[int]:
        """The explicit override, or the ``4·⌈log2 n⌉ + 16`` default."""
        if self.bandwidth is not None:
            return self.bandwidth
        return default_bandwidth(n)

    def peers(self, network: "Network", v: int) -> Tuple[int, ...]:
        """Physical neighbors (the network's adjacency, unchanged)."""
        return network.neighbors(v)

    def is_peer(self, network: "Network", src: int, dst: int) -> bool:
        """True iff ``src`` and ``dst`` share a physical edge."""
        return network.has_edge(src, dst)

    @property
    def event_token(self) -> str:
        """Empty: default-model traces stay byte-identical to history."""
        return ""

    @property
    def csr_port(self) -> bool:
        """True — the vectorized bulk loop was built for this model."""
        return True


@dataclass(frozen=True)
class CongestCliqueModel(CommModel):
    """CONGEST-CLIQUE: all-pairs logical links of O(log n) bits per round.

    Every ordered pair of distinct nodes shares a logical link — the
    physical graph constrains *cost*, not *connectivity*.  Messages
    between physically non-adjacent nodes are routed over the physical
    topology; the engine's bit statistics charge the full relay path via
    :class:`CliqueRouter` (``bits × hops``), so a clique algorithm run
    over a sparse physical graph shows its true transport bill.  The
    per-pair budget defaults to the same ``Θ(log n)`` allowance CONGEST
    uses; an explicit ``bandwidth`` overrides it.
    """

    bandwidth: Optional[int] = None

    name = "congest-clique"

    def __post_init__(self):
        if self.bandwidth is not None and self.bandwidth < 1:
            raise CongestError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )

    def resolve_bandwidth(self, n: int) -> Optional[int]:
        """Per-pair budget: the explicit override or ``Θ(log n)`` bits."""
        if self.bandwidth is not None:
            return self.bandwidth
        return default_bandwidth(n)

    def peers(self, network: "Network", v: int) -> Tuple[int, ...]:
        """Every other node: the clique's all-pairs connectivity."""
        return tuple(u for u in range(network.n) if u != v)

    def is_peer(self, network: "Network", src: int, dst: int) -> bool:
        """True for every distinct pair (self-links never exist)."""
        return src != dst and 0 <= dst < network.n

    def router(self, network: "Network") -> Optional[Router]:
        """The physical-path biller (identity on an actual clique)."""
        return CliqueRouter(network)

    @property
    def cache_key(self) -> str:
        """Distinct from CONGEST so cached CSR/setup state never mixes."""
        return self.name


@dataclass(frozen=True)
class LocalModel(CommModel):
    """The LOCAL model: physical edges, unbounded message size.

    Connectivity is exactly CONGEST's; the bandwidth cap is gone
    (``resolve_bandwidth`` returns None, ``Network.words`` collapses to
    one round per transfer).  This is the cheap third backend the
    LOCAL-vs-CONGEST separation scenarios need.
    """

    name = "local"

    def resolve_bandwidth(self, n: int) -> Optional[int]:
        """None: LOCAL messages are unbounded."""
        return None

    def peers(self, network: "Network", v: int) -> Tuple[int, ...]:
        """Physical neighbors, same as CONGEST."""
        return network.neighbors(v)

    def is_peer(self, network: "Network", src: int, dst: int) -> bool:
        """True iff ``src`` and ``dst`` share a physical edge."""
        return network.has_edge(src, dst)


#: The process-wide default model instance (the pre-refactor behavior).
DEFAULT_MODEL = CongestModel()

#: name -> zero-argument default instance, for string-based configs.
MODELS = {
    CongestModel.name: CongestModel(),
    CongestCliqueModel.name: CongestCliqueModel(),
    LocalModel.name: LocalModel(),
}


def resolve_model(model) -> CommModel:
    """Coerce a model spec — name string, instance, or None — to a model.

    ``None`` resolves to the default :class:`CongestModel`; a string
    must name a registered model (``"congest"``, ``"congest-clique"``,
    ``"local"``); a :class:`CommModel` instance passes through.
    """
    if model is None:
        return DEFAULT_MODEL
    if isinstance(model, CommModel):
        return model
    if isinstance(model, str):
        try:
            return MODELS[model]
        except KeyError:
            raise CongestError(
                f"unknown communication model {model!r}; "
                f"available: {sorted(MODELS)}"
            ) from None
    raise CongestError(
        f"comm_model must be a CommModel, a model name, or None; "
        f"got {type(model).__name__}"
    )
