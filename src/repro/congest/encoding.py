"""Bit-size accounting for CONGEST message payloads.

The CONGEST model limits each message to O(log n) bits.  Simulated messages
carry ordinary Python values for convenience, but every payload must have a
well-defined encoded size so the engine can enforce the bandwidth limit.
This module defines the sizing rules.

The canonical wire format we charge for is:

* ``None``            — 1 bit (a "nothing here" flag),
* ``bool``            — 1 bit,
* ``int``             — one *field*; its width must be declared via a
  :class:`Field` wrapper, or defaults to the number of bits in its absolute
  value plus a sign bit,
* ``float``           — 64 bits (IEEE-754 double),
* ``str``             — 8 bits per character (used only for small tags),
* ``tuple``/``list``  — the sum of the element sizes (structure is part of
  the protocol, so it costs nothing extra, matching how CONGEST proofs
  count "a message consists of an id and a distance" as log n + log n bits).

Algorithms that want exact theory-grade accounting wrap integers in
:class:`Field` with an explicit domain size, e.g. ``Field(v, domain=n)`` for
a node identifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict


@dataclass(frozen=True)
class Field:
    """An integer payload element with an explicit domain.

    ``Field(value, domain=k)`` is charged ``ceil(log2(k))`` bits (minimum 1),
    matching the paper's convention that an index into ``[k]`` costs
    ``log(k)`` bits.
    """

    value: int
    domain: int

    def __post_init__(self):
        if self.domain < 1:
            raise ValueError(f"domain must be >= 1, got {self.domain}")
        if not 0 <= self.value < max(self.domain, 1):
            raise ValueError(
                f"value {self.value} outside domain [0, {self.domain})"
            )

    @property
    def bits(self) -> int:
        return bits_for_domain(self.domain)


@lru_cache(maxsize=4096)
def bits_for_domain(domain: int) -> int:
    """Bits required to encode one value from a domain of the given size."""
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    return max(1, math.ceil(math.log2(domain))) if domain > 1 else 1


def bits_for_int(value: int) -> int:
    """Default sizing for a bare int: magnitude bits plus a sign bit."""
    return max(1, abs(value).bit_length()) + 1


# Memo for theory-grade payloads.  Sizing is value-pure, so equal payloads
# have equal sizes — but Python's cross-type equality (1 == True == 1.0)
# would alias cache entries with *different* sizes, so only payloads built
# from Field/str/None (whose equality never crosses types) are cached.
_PAYLOAD_BITS_CACHE: Dict[Any, int] = {}
_PAYLOAD_BITS_CACHE_MAX = 4096
_CACHE_SAFE_TYPES = (Field, str, type(None))


def _cacheable(payload: Any) -> bool:
    if type(payload) is Field:
        return True
    if type(payload) is tuple:
        return all(type(item) in _CACHE_SAFE_TYPES for item in payload)
    return False


def payload_bits(payload: Any) -> int:
    """Return the charged encoded size of a payload in bits.

    Sizes of ``Field``-based payloads (the theory-grade accounting used by
    all library algorithms) are memoized process-wide: repeated sends of
    the same message shape hit a dict lookup instead of re-walking the
    structure.

    Raises:
        TypeError: if the payload contains an unsupported type.
    """
    if _cacheable(payload):
        bits = _PAYLOAD_BITS_CACHE.get(payload)
        if bits is None:
            bits = _payload_bits_impl(payload)
            if len(_PAYLOAD_BITS_CACHE) >= _PAYLOAD_BITS_CACHE_MAX:
                _PAYLOAD_BITS_CACHE.clear()
            _PAYLOAD_BITS_CACHE[payload] = bits
        return bits
    return _payload_bits_impl(payload)


def _payload_bits_impl(payload: Any) -> int:
    if payload is None:
        return 1
    if isinstance(payload, Field):
        return payload.bits
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return bits_for_int(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(payload_bits(item) for item in payload)
    if isinstance(payload, frozenset):
        return sum(payload_bits(item) for item in payload)
    raise TypeError(
        f"payload of type {type(payload).__name__} has no defined wire size"
    )


def unwrap(payload: Any) -> Any:
    """Strip :class:`Field` wrappers, returning plain Python values."""
    if isinstance(payload, Field):
        return payload.value
    if isinstance(payload, tuple):
        return tuple(unwrap(item) for item in payload)
    if isinstance(payload, list):
        return [unwrap(item) for item in payload]
    return payload
