"""The synchronous round engine for the CONGEST model.

The engine drives a set of :class:`~repro.congest.program.NodeProgram`
instances through synchronized rounds over a
:class:`~repro.congest.network.Network`, enforcing the model rules
(bandwidth, adjacency, one message per edge direction per round) and
recording round and traffic statistics.

Round accounting matches the convention used in the paper's proofs: local
computation is free and unbounded; only communication rounds count.  The
reported ``rounds`` is the index of the last round in which any message was
in flight or any program executed.

Three scheduling strategies produce *identical* results (rounds, outputs,
traffic statistics — the determinism property tests pin this down):

* ``"dense"`` — the textbook loop: every non-halted node executes every
  round, even with an empty inbox.
* ``"vectorized"`` — the bulk loop: for audited structured program
  families (BFS, multi-source BFS, the pipelined tree transfers) whole
  rounds execute as numpy array operations over a CSR adjacency
  (:mod:`repro.congest.vectorized`), removing per-node Python dispatch
  entirely; anything unsupported transparently falls back to the active
  loop, and fault-armed engine subclasses veto the bypass.
* ``"active"`` (default) — the hot-path loop: a node executes a round only
  when it has deliveries, sent messages in its previous executed round
  (it may be mid-stream), has a due :meth:`~repro.congest.program.Context.
  request_wakeup`, or its program declares
  :attr:`~repro.congest.program.NodeProgram.always_active`.  Programs whose
  ``on_round`` is a pure no-op on silent rounds opt in by setting
  ``always_active = False``; everything else keeps dense semantics
  automatically.  On flooding/pipelining workloads where most nodes are
  silent most rounds this removes the per-round O(n) scan entirely.

Round accounting and CONGEST semantics are unchanged by the scheduler: a
skipped node is exactly a node whose execution would have been a no-op.

Both loops are written as *round generators* (:meth:`Engine.steps`): each
``next()`` executes exactly one communication round and the generator's
return value is the :class:`RunResult`.  :meth:`Engine.run` simply drives
the generator to exhaustion, so the monolithic and stepwise paths are the
same code — bit-identity between ``run()`` and an :class:`EngineStepper`
is structural, and the hypothesis pinning in
``tests/congest/test_engine_step.py`` re-proves it end to end.  The
stepper is what lets one event loop interleave many in-flight executions
(the :mod:`repro.serve` daemon) and is the seam for live tracing and
cooperative timeouts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..obs.recorder import Recorder, current_recorder
from .errors import RoundLimitExceeded
from .messages import Inbox, Message, TrafficStats
from .network import Network
from .program import Context, NodeProgram

#: Safety valve: CONGEST algorithms in this repo are all polylog·(n + D)
#: or small-polynomial; anything past this many rounds is a bug.
DEFAULT_MAX_ROUNDS_PER_NODE = 50
DEFAULT_MAX_ROUNDS_FLOOR = 10_000

#: Shared immutable inbox handed to nodes executing a silent round.
_EMPTY_INBOX = Inbox()

#: Recognized scheduling strategies.  ``"vectorized"`` executes whole
#: rounds as numpy array ops over a CSR adjacency for audited program
#: families (:mod:`repro.congest.vectorized`) and transparently falls
#: back to ``"active"`` for everything else.
SCHEDULES = ("active", "dense", "vectorized")


@dataclass
class RunResult:
    """Outcome of one engine execution."""

    rounds: int
    outputs: Dict[int, Any]
    stats: TrafficStats = field(default_factory=TrafficStats)

    def output_of(self, v: int) -> Any:
        return self.outputs.get(v)

    def common_output(self) -> Any:
        """The single output shared by all nodes that produced one.

        Hashable outputs are compared via a hash set (O(m)); unhashable
        outputs such as lists and dicts fall back to the equality scan,
        so both remain supported.

        Raises:
            ValueError: if nodes disagree or none produced output.
        """
        produced = [o for o in self.outputs.values() if o is not None]
        if not produced:
            raise ValueError("no node produced an output")
        first = produced[0]
        try:
            distinct_set = set(produced)
            if len(distinct_set) == 1:
                return first
            # Report disagreements in first-seen order, as the equality
            # scan always did.
            seen = set()
            distinct = []
            for o in produced:
                if o not in seen:
                    seen.add(o)
                    distinct.append(o)
        except TypeError:
            # Unhashable outputs: the original quadratic equality scan.
            distinct = [first]
            for o in produced[1:]:
                if not any(o == seen_o for seen_o in distinct):
                    distinct.append(o)
        if len(distinct) != 1:
            raise ValueError(f"nodes disagree on output: {distinct}")
        return first


class Engine:
    """Synchronous executor for CONGEST node programs.

    Args:
        network: the communication graph and bandwidth limit.
        programs: one program per node (all nodes must be covered).
        seed: seeds the per-node RNGs (each node gets an independent
            child generator, so runs are reproducible but nodes do not
            share randomness — the model has no shared coins).
        max_rounds: execution budget; exceeded budgets raise
            :class:`RoundLimitExceeded`.
        schedule: ``"active"`` (default, skip provably idle nodes),
            ``"dense"`` (execute every node every round), or
            ``"vectorized"`` (whole rounds as numpy array ops for
            audited program families, per-node fallback otherwise).
            Results are identical; only wall time differs.
        recorder: observability spine bus (:mod:`repro.obs`).  Defaults
            to the ambient :func:`~repro.obs.current_recorder`, which is
            the null recorder unless one is installed; recording never
            changes rounds, outputs, or traffic statistics.
    """

    def __init__(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        stop_on_quiescence: bool = False,
        schedule: str = "active",
        recorder: Optional[Recorder] = None,
    ):
        missing = set(network.nodes()) - set(programs)
        if missing:
            raise ValueError(f"no program supplied for nodes {sorted(missing)}")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
            )
        self.network = network
        self.programs = programs
        self.schedule = schedule
        self.recorder = recorder if recorder is not None else current_recorder()
        #: Cached at construction so the hot loops pay one boolean check;
        #: with the null recorder the engine is bit- and branch-identical
        #: to an uninstrumented one.
        self._recording = self.recorder.active
        if max_rounds is None:
            max_rounds = max(
                DEFAULT_MAX_ROUNDS_FLOOR,
                DEFAULT_MAX_ROUNDS_PER_NODE * network.n,
            )
        self.max_rounds = max_rounds
        #: When set, the run also ends once no messages are in flight, even
        #: if programs have not halted.  This models flooding algorithms
        #: (multi-source BFS, max-id election) whose natural end is network
        #: quiescence; a deployed version would add an O(D) termination-
        #: detection phase, which callers charge separately.
        self.stop_on_quiescence = stop_on_quiescence
        #: Per-node Contexts (with their spawned RNG streams) are built
        #: lazily on first access: the vectorized fast path never
        #: executes per-node programs, and constructing n Contexts plus n
        #: spawned Generators is a large fixed cost at large n (it
        #: dominated vectorized wall time before PR 7 deferred it).
        #: Construction is deterministic in ``seed`` alone, so a lazy
        #: build is bit-identical to the historical eager one.
        self._seed = seed
        self._contexts: Optional[Dict[int, Context]] = None
        #: Number of halted nodes, so :meth:`_all_halted` is O(1) instead
        #: of an O(n) per-round scan.
        self._halted_count = 0
        #: Dense-loop execution order of each node; the active scheduler
        #: sorts its candidate set by this so message ordering (and hence
        #: results) match the dense loop exactly.
        self._order: Dict[int, int] = {v: i for i, v in enumerate(programs)}
        #: Insertion-ordered set of non-halted nodes whose programs demand
        #: execution every round (``always_active``); pruned on halt.
        self._always_on: Dict[int, None] = {
            v: None
            for v, p in programs.items()
            if getattr(p, "always_active", True)
        }
        #: Communication-model seam, cached once: the token stamped on
        #: round events ("" for the default CONGEST model, so default
        #: traces stay byte-identical), and the optional per-round
        #: routing biller (CONGEST-CLIQUE charges logical links routed
        #: over the physical graph; CONGEST/LOCAL attach none and the
        #: hot loops pay a single ``is not None`` check).
        self._model_token = network.model.event_token
        self._router = network.model.router(network)
        #: Reusable inbox buffer: node -> list of this round's deliveries.
        #: Lists are cleared and reused round to round (dict churn was a
        #: measurable cost at large n); an Inbox is only valid during the
        #: round it was handed to ``on_round``.
        self._inbox_buf: Dict[int, List[Message]] = {}
        self._inbox_touched: List[int] = []
        #: Re-entrancy latch: True while a :meth:`steps` generator is live.
        self._running = False
        #: Rounds executed on the vectorized fast path (0 unless
        #: ``schedule="vectorized"`` actually engaged; surfaced through
        #: the obs spine as the ``vectorized_rounds`` metric).
        self.vectorized_rounds = 0
        #: Why a vectorized run fell back to the per-node path (None
        #: when it did not): a program-mix reason from
        #: :func:`repro.congest.vectorized.build_vectorized` or the
        #: engine-subclass veto from :meth:`_vectorized_ok`.
        self.vectorized_fallback: Optional[str] = None

    @property
    def contexts(self) -> Dict[int, Context]:
        """node -> its :class:`Context`, built (deterministically) on demand."""
        if self._contexts is None:
            network = self.network
            children = np.random.SeedSequence(self._seed).spawn(network.n)
            self._contexts = {
                v: Context(
                    node=v,
                    neighbors=network.peers(v),
                    n=network.n,
                    bandwidth=network.bandwidth,
                    rng=np.random.default_rng(children[v]),
                    model=self._model_token,
                )
                for v in network.nodes()
            }
        return self._contexts

    def run(self) -> RunResult:
        """Execute until every node halts; return outputs and statistics."""
        return self.stepper().run_to_completion()

    def steps(self) -> Iterator[int]:
        """The round generator behind both :meth:`run` and the stepper.

        Each ``next()`` executes exactly one communication round (the
        first also runs every program's round-0 ``on_start``) and yields
        the round number just completed; the generator's ``return`` value
        (``StopIteration.value``) is the :class:`RunResult`.  Contexts
        mutate as rounds execute, so a second generator may only be
        created once the first has finished (re-running a *completed*
        engine remains the historical no-op); interleaving two live
        generators over one engine would corrupt the round state and is
        rejected.
        """
        if self._running:
            raise RuntimeError(
                "engine already mid-run; build a fresh Engine per execution"
            )
        self._running = True
        if self.schedule == "dense":
            return self._finishing(self._dense_steps())
        if self.schedule == "vectorized":
            return self._finishing(self._vectorized_steps())
        return self._finishing(self._active_steps())

    def _finishing(self, gen: Iterator[int]) -> Iterator[int]:
        """Clear the re-entrancy latch when a round generator completes."""
        result = yield from gen
        self._running = False
        return result

    def stepper(self) -> "EngineStepper":
        """A re-entrant handle that advances this engine one round at a time."""
        return EngineStepper(self)

    # ------------------------------------------------------------------
    # dense loop (reference semantics)
    # ------------------------------------------------------------------

    def _dense_steps(self) -> Iterator[int]:
        """The reference loop: every non-halted node runs every round."""
        stats = TrafficStats()
        in_flight: List[Message] = []

        # Round 0: local initialization, no communication charged.
        for v, program in self.programs.items():
            ctx = self.contexts[v]
            program.on_start(ctx)
            if ctx.halted:
                self._note_halt(v)
            in_flight.extend(ctx._drain_outbox(0))

        rounds = 0
        while True:
            if (
                not in_flight
                and not self._channel_pending()
                and (self._all_halted() or self.stop_on_quiescence)
            ):
                break
            if rounds >= self.max_rounds:
                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1
            self._begin_round(rounds)

            delivered = self._transmit(in_flight, rounds)
            self._canonicalize(delivered)
            inboxes: Dict[int, List[Message]] = {}
            bits = 0
            for msg in delivered:
                inboxes.setdefault(msg.dst, []).append(msg)
                bits += msg.bits
                self._on_deliver(msg, rounds)
            if self._router is not None:
                bits += self._router.extra_bits(delivered)
            stats.record_round(len(delivered), bits)
            if self._recording:
                self.recorder.round(
                    rounds, len(delivered), bits, model=self._model_token
                )
            in_flight = []

            for v, program in self.programs.items():
                ctx = self.contexts[v]
                if ctx.halted:
                    # Messages to halted nodes are dropped; well-formed
                    # algorithms never rely on them.
                    continue
                if not self._node_active(v, rounds):
                    # A crashed node neither executes nor receives; its
                    # inbox for this round is lost.
                    continue
                ctx.round = rounds
                program.on_round(ctx, Inbox(inboxes.get(v)))
                if ctx.halted:
                    self._note_halt(v)
                in_flight.extend(ctx._drain_outbox(rounds))
            yield rounds

        outputs = {v: self.contexts[v].output for v in self.network.nodes()}
        return RunResult(rounds=rounds, outputs=outputs, stats=stats)

    # ------------------------------------------------------------------
    # active-set loop (hot path)
    # ------------------------------------------------------------------

    def _active_steps(self) -> Iterator[int]:
        """The hot-path loop: execute only nodes that can make progress.

        A node executes in round r iff at least one of:

        * a message was delivered to it at the start of round r,
        * it sent messages in the previous round it executed (streaming
          programs keep pushing until their queues drain),
        * it requested a wakeup for a round <= r,
        * its program is ``always_active`` (the conservative default).

        Nodes run in dense-loop order, so the in-flight message order —
        and therefore every downstream observation — is bit-identical to
        :meth:`_run_dense`.
        """
        stats = TrafficStats()
        in_flight: List[Message] = []
        contexts = self.contexts
        programs = self.programs
        order = self._order
        always_on = self._always_on
        inbox_buf = self._inbox_buf
        touched = self._inbox_touched
        #: nodes that sent last round ("pending sends" — may be mid-stream)
        carry: set = set()
        #: (due_round, node) min-heap of requested wakeups
        wake_heap: List[tuple] = []

        # Round 0: local initialization, no communication charged.
        for v, program in programs.items():
            ctx = contexts[v]
            program.on_start(ctx)
            if ctx.halted:
                self._note_halt(v)
            if ctx._outbox:
                in_flight.extend(ctx._drain_outbox(0))
                if not ctx.halted:
                    carry.add(v)
            wake = ctx._take_wakeup()
            if wake is not None and not ctx.halted:
                heapq.heappush(wake_heap, (max(wake, 1), v))

        rounds = 0
        while True:
            if (
                not in_flight
                and not self._channel_pending()
                and (self._all_halted() or self.stop_on_quiescence)
            ):
                break
            if rounds >= self.max_rounds:
                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1
            self._begin_round(rounds)

            # Reset the inbox buffer from the previous round (clear only
            # the touched lists; the dict itself persists).
            for v in touched:
                inbox_buf[v].clear()
            touched.clear()

            delivered = self._transmit(in_flight, rounds)
            self._canonicalize(delivered)
            bits = 0
            for msg in delivered:
                dst = msg.dst
                lst = inbox_buf.get(dst)
                if lst is None:
                    lst = inbox_buf[dst] = []
                if not lst:
                    touched.append(dst)
                lst.append(msg)
                bits += msg.bits
                self._on_deliver(msg, rounds)
            if self._router is not None:
                bits += self._router.extra_bits(delivered)
            stats.record_round(len(delivered), bits)
            if self._recording:
                self.recorder.round(
                    rounds, len(delivered), bits, model=self._model_token
                )
            in_flight = []

            # Build this round's execution set in dense-loop order.
            due: List[int] = []
            while wake_heap and wake_heap[0][0] <= rounds:
                due.append(heapq.heappop(wake_heap)[1])
            if carry or due or len(touched) > 0:
                cand = set(touched)
                cand.update(carry)
                cand.update(due)
                cand.update(always_on)
                run_list: List[int] = sorted(cand, key=order.__getitem__)
            else:
                run_list = list(always_on)
            carry = set()

            for v in run_list:
                ctx = contexts[v]
                if ctx.halted:
                    # Messages to halted nodes are dropped; well-formed
                    # algorithms never rely on them.
                    continue
                if not self._node_active(v, rounds):
                    # A crashed node neither executes nor receives; its
                    # inbox for this round is lost.
                    continue
                ctx.round = rounds
                msgs = inbox_buf.get(v)
                program = programs[v]
                program.on_round(ctx, Inbox._wrap(msgs) if msgs else _EMPTY_INBOX)
                if ctx.halted:
                    self._note_halt(v)
                if ctx._outbox:
                    in_flight.extend(ctx._drain_outbox(rounds))
                    if not ctx.halted:
                        carry.add(v)
                wake = ctx._take_wakeup()
                if wake is not None and not ctx.halted:
                    heapq.heappush(wake_heap, (max(wake, rounds + 1), v))
            yield rounds

        outputs = {v: contexts[v].output for v in self.network.nodes()}
        return RunResult(rounds=rounds, outputs=outputs, stats=stats)

    # ------------------------------------------------------------------
    # vectorized loop (column-major fast path)
    # ------------------------------------------------------------------

    def _vectorized_steps(self) -> Iterator[int]:
        """Whole-network rounds as array ops (see :mod:`.vectorized`).

        Engages only when (a) this engine's fault/observation seam hooks
        are the perfect-network base implementations (a fault-armed
        subclass must see every message individually) and (b) the
        program dict is an audited homogeneous family with a bulk port.
        Anything else silently falls back to the active-set loop,
        recording the reason on :attr:`vectorized_fallback` — results
        are bit-identical either way, only wall time differs.
        """
        vp = None
        if not self.network.model.csr_port:
            # The bulk loop assumes physical-edge delivery with uniform
            # per-message bits; models that route over logical links
            # (CLIQUE) or meter differently (LOCAL's unbounded messages)
            # take the per-node path.
            self.vectorized_fallback = (
                f"model-{self.network.model.name}-lacks-csr-port"
            )
        elif not self._vectorized_ok():
            self.vectorized_fallback = "engine-overrides-round-hooks"
        else:
            from .vectorized import build_vectorized

            vp, reason = build_vectorized(self)
            if vp is None:
                self.vectorized_fallback = reason
        if vp is None:
            result = yield from self._active_steps()
            return result

        stats = TrafficStats()
        csr = vp.csr
        order_arr = np.empty(self.network.n, dtype=np.int64)
        for v, i in self._order.items():
            order_arr[v] = i
        active = np.ones(self.network.n, dtype=bool)

        # Round 0: local initialization, no communication charged.
        in_flight, halts = vp.start()
        if halts.any():
            for v in np.nonzero(halts)[0]:
                self._note_halt(int(v))
            active[halts] = False

        rounds = 0
        while True:
            if len(in_flight) == 0 and (
                self._all_halted() or self.stop_on_quiescence
            ):
                break
            if rounds >= self.max_rounds:
                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1
            self._begin_round(rounds)

            count = len(in_flight)
            bits = count * vp.bits_per_message
            if self._recording:
                # Deliver events in the canonical (program order, dst)
                # order the per-node loops emit.
                src = csr.src[in_flight.edges]
                dst = csr.indices[in_flight.edges]
                for i in np.lexsort((dst, order_arr[src])):
                    self.recorder.deliver(
                        rounds,
                        int(src[i]),
                        int(dst[i]),
                        vp.bits_per_message,
                        (int(in_flight.a[i]), int(in_flight.b[i])),
                    )
            stats.record_round(count, bits)
            if self._recording:
                self.recorder.round(
                    rounds, count, bits,
                    mode="vectorized", model=self._model_token,
                )

            in_flight, halts = vp.step_all(vp.state, in_flight, active, rounds)
            if halts.any():
                for v in np.nonzero(halts)[0]:
                    self._note_halt(int(v))
                active[halts] = False
            self.vectorized_rounds += 1
            yield rounds

        return RunResult(
            rounds=rounds, outputs=vp.outputs(rounds), stats=stats
        )

    def _vectorized_ok(self) -> bool:
        """Whether the fast path may bypass the per-message seam hooks.

        True only when every fault/observation hook is the base
        perfect-network implementation; :class:`repro.faults.
        FaultyEngine` (or any subclass customizing the seam) fails this
        identity check and takes the per-node fallback automatically.
        """
        cls = type(self)
        return (
            cls._begin_round is Engine._begin_round
            and cls._transmit is Engine._transmit
            and cls._channel_pending is Engine._channel_pending
            and cls._node_active is Engine._node_active
            and cls._on_deliver is Engine._on_deliver
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _canonicalize(self, delivered: List[Message]) -> None:
        """Sort a round's deliveries into canonical (sender, dst) order.

        Senders already appear in program order (each node's sends are
        appended as it executes); the stable sort additionally orders
        each sender's block by destination, which is the order the
        vectorized loop produces natively.  Applied *after*
        :meth:`_transmit` so fault models consume their per-message
        randomness in unsorted send order (streams stay compatible),
        and stably, so a delayed message released this round still lands
        ahead of a fresh same-edge one.  Per-node inbox contents are
        unchanged (at most one message per (src, dst) pair per round per
        channel event); only the deliver-event order all three schedules
        share is fixed.
        """
        if len(delivered) > 1:
            order = self._order
            delivered.sort(key=lambda m: (order[m.src], m.dst))

    def _note_halt(self, v: int) -> None:
        """Record that node ``v`` halted (keeps :meth:`_all_halted` O(1))."""
        self._halted_count += 1
        self._always_on.pop(v, None)

    def _all_halted(self) -> bool:
        # network.n, not len(self.contexts): every node has a program
        # (validated at construction), and touching ``contexts`` here
        # would force the lazy per-node build the vectorized path avoids.
        return self._halted_count >= self.network.n

    # ------------------------------------------------------------------
    # fault-injection / observation seam
    # ------------------------------------------------------------------
    # The base implementations describe a perfect synchronous network:
    # every message sent in round r is delivered at the start of round
    # r+1 and every node executes every round.  Traffic observation goes
    # through the recorder (:mod:`repro.obs`) — :class:`~repro.congest.
    # tracing.TracingEngine` is just an engine with a Trace-building sink
    # attached.  Subclasses override these hooks to inject channel and
    # node faults (:class:`repro.faults.FaultyEngine`) without touching
    # the round loop, so every existing NodeProgram runs unmodified
    # under faults.

    def _begin_round(self, round_no: int) -> None:
        """Hook called at the top of every communication round."""

    def _transmit(self, messages: List[Message], round_no: int) -> List[Message]:
        """The channel: decide which in-flight messages arrive this round.

        May drop, corrupt, or hold back messages; held messages must be
        reported via :meth:`_channel_pending` until released.
        """
        return messages

    def _channel_pending(self) -> bool:
        """Whether the channel still holds undelivered (delayed) messages."""
        return False

    def _node_active(self, v: int, round_no: int) -> bool:
        """Whether node ``v`` executes this round (``False`` = crashed)."""
        return True

    def _on_deliver(self, msg: Message, round_no: int) -> None:
        """Observation hook invoked for every delivered message.

        The default emits a ``deliver`` event on the recorder (a no-op
        branch when recording is off); subclasses that need richer
        observation still override it.
        """
        if self._recording:
            self.recorder.deliver(round_no, msg.src, msg.dst, msg.bits, msg.value)


class EngineStepper:
    """Re-entrant, one-round-at-a-time driver over an :class:`Engine`.

    The stepper owns the engine's round generator; every :meth:`step`
    executes exactly one communication round.  Because :meth:`Engine.run`
    drives the *same* generator, a stepped execution is bit-identical to a
    monolithic one — rounds, outputs, traffic statistics, and every
    recorder event, in the same order.  Many steppers over *different*
    engines interleave freely (no shared mutable state), which is what the
    :mod:`repro.serve` event loop relies on.

    Typical use::

        stepper = Engine(net, programs, seed=0).stepper()
        while stepper.step():
            ...  # yield to other work between rounds
        result = stepper.result
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._gen = engine.steps()
        self._result: Optional[RunResult] = None
        #: Rounds executed so far (mirrors the engine's round counter).
        self.rounds = 0

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> RunResult:
        """The finished :class:`RunResult`; raises until :attr:`done`."""
        if self._result is None:
            raise RuntimeError("engine still running; call step() until done")
        return self._result

    def step(self) -> bool:
        """Execute one communication round; False once the run finished.

        Raises whatever the round loop raises (:class:`RoundLimitExceeded`
        on budget exhaustion) at the step where it happens, exactly as
        :meth:`Engine.run` would.
        """
        if self._result is not None:
            return False
        try:
            self.rounds = next(self._gen)
            return True
        except StopIteration as stop:
            self._result = stop.value
            return False

    def run_to_completion(self) -> RunResult:
        """Drive the remaining rounds without yielding; returns the result."""
        while self.step():
            pass
        return self.result


def run_program(
    network: Network,
    programs: Dict[int, NodeProgram],
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
    schedule: str = "active",
    recorder: Optional[Recorder] = None,
) -> RunResult:
    """Convenience wrapper: build an engine and run it."""
    engine = Engine(
        network,
        programs,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
        schedule=schedule,
        recorder=recorder,
    )
    return engine.run()
