"""The synchronous round engine for the CONGEST model.

The engine drives a set of :class:`~repro.congest.program.NodeProgram`
instances through synchronized rounds over a
:class:`~repro.congest.network.Network`, enforcing the model rules
(bandwidth, adjacency, one message per edge direction per round) and
recording round and traffic statistics.

Round accounting matches the convention used in the paper's proofs: local
computation is free and unbounded; only communication rounds count.  The
reported ``rounds`` is the index of the last round in which any message was
in flight or any program executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .errors import RoundLimitExceeded
from .messages import Inbox, Message, TrafficStats
from .network import Network
from .program import Context, NodeProgram

#: Safety valve: CONGEST algorithms in this repo are all polylog·(n + D)
#: or small-polynomial; anything past this many rounds is a bug.
DEFAULT_MAX_ROUNDS_PER_NODE = 50
DEFAULT_MAX_ROUNDS_FLOOR = 10_000


@dataclass
class RunResult:
    """Outcome of one engine execution."""

    rounds: int
    outputs: Dict[int, Any]
    stats: TrafficStats = field(default_factory=TrafficStats)

    def output_of(self, v: int) -> Any:
        return self.outputs.get(v)

    def common_output(self) -> Any:
        """The single output shared by all nodes that produced one.

        Raises:
            ValueError: if nodes disagree or none produced output.
        """
        produced = {v: o for v, o in self.outputs.items() if o is not None}
        if not produced:
            raise ValueError("no node produced an output")
        values = set(produced.values())
        if len(values) != 1:
            raise ValueError(f"nodes disagree on output: {values}")
        return values.pop()


class Engine:
    """Synchronous executor for CONGEST node programs.

    Args:
        network: the communication graph and bandwidth limit.
        programs: one program per node (all nodes must be covered).
        seed: seeds the per-node RNGs (each node gets an independent
            child generator, so runs are reproducible but nodes do not
            share randomness — the model has no shared coins).
        max_rounds: execution budget; exceeded budgets raise
            :class:`RoundLimitExceeded`.
    """

    def __init__(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        stop_on_quiescence: bool = False,
    ):
        missing = set(network.nodes()) - set(programs)
        if missing:
            raise ValueError(f"no program supplied for nodes {sorted(missing)}")
        self.network = network
        self.programs = programs
        if max_rounds is None:
            max_rounds = max(
                DEFAULT_MAX_ROUNDS_FLOOR,
                DEFAULT_MAX_ROUNDS_PER_NODE * network.n,
            )
        self.max_rounds = max_rounds
        #: When set, the run also ends once no messages are in flight, even
        #: if programs have not halted.  This models flooding algorithms
        #: (multi-source BFS, max-id election) whose natural end is network
        #: quiescence; a deployed version would add an O(D) termination-
        #: detection phase, which callers charge separately.
        self.stop_on_quiescence = stop_on_quiescence
        seed_seq = np.random.SeedSequence(seed)
        children = seed_seq.spawn(network.n)
        self.contexts: Dict[int, Context] = {
            v: Context(
                node=v,
                neighbors=network.neighbors(v),
                n=network.n,
                bandwidth=network.bandwidth,
                rng=np.random.default_rng(children[v]),
            )
            for v in network.nodes()
        }

    def run(self) -> RunResult:
        """Execute until every node halts; return outputs and statistics."""
        stats = TrafficStats()
        in_flight: List[Message] = []

        # Round 0: local initialization, no communication charged.
        for v, program in self.programs.items():
            ctx = self.contexts[v]
            program.on_start(ctx)
            in_flight.extend(ctx._drain_outbox(0))

        rounds = 0
        while True:
            if not in_flight and (self._all_halted() or self.stop_on_quiescence):
                break
            if rounds >= self.max_rounds:
                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1

            inboxes: Dict[int, List[Message]] = {}
            for msg in in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
            stats.record_round(
                len(in_flight), sum(m.bits for m in in_flight)
            )
            in_flight = []

            for v, program in self.programs.items():
                ctx = self.contexts[v]
                if ctx.halted:
                    # Messages to halted nodes are dropped; well-formed
                    # algorithms never rely on them.
                    continue
                ctx.round = rounds
                program.on_round(ctx, Inbox(inboxes.get(v)))
                in_flight.extend(ctx._drain_outbox(rounds))

        outputs = {v: self.contexts[v].output for v in self.network.nodes()}
        return RunResult(rounds=rounds, outputs=outputs, stats=stats)

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self.contexts.values())


def run_program(
    network: Network,
    programs: Dict[int, NodeProgram],
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
) -> RunResult:
    """Convenience wrapper: build an engine and run it."""
    engine = Engine(
        network,
        programs,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
    )
    return engine.run()
