"""The synchronous round engine for the CONGEST model.

The engine drives a set of :class:`~repro.congest.program.NodeProgram`
instances through synchronized rounds over a
:class:`~repro.congest.network.Network`, enforcing the model rules
(bandwidth, adjacency, one message per edge direction per round) and
recording round and traffic statistics.

Round accounting matches the convention used in the paper's proofs: local
computation is free and unbounded; only communication rounds count.  The
reported ``rounds`` is the index of the last round in which any message was
in flight or any program executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .errors import RoundLimitExceeded
from .messages import Inbox, Message, TrafficStats
from .network import Network
from .program import Context, NodeProgram

#: Safety valve: CONGEST algorithms in this repo are all polylog·(n + D)
#: or small-polynomial; anything past this many rounds is a bug.
DEFAULT_MAX_ROUNDS_PER_NODE = 50
DEFAULT_MAX_ROUNDS_FLOOR = 10_000


@dataclass
class RunResult:
    """Outcome of one engine execution."""

    rounds: int
    outputs: Dict[int, Any]
    stats: TrafficStats = field(default_factory=TrafficStats)

    def output_of(self, v: int) -> Any:
        return self.outputs.get(v)

    def common_output(self) -> Any:
        """The single output shared by all nodes that produced one.

        Outputs are compared by equality (not hashing), so unhashable
        outputs such as lists and dicts are supported.

        Raises:
            ValueError: if nodes disagree or none produced output.
        """
        produced = [o for o in self.outputs.values() if o is not None]
        if not produced:
            raise ValueError("no node produced an output")
        first = produced[0]
        distinct = [first]
        for o in produced[1:]:
            if not any(o == seen for seen in distinct):
                distinct.append(o)
        if len(distinct) != 1:
            raise ValueError(f"nodes disagree on output: {distinct}")
        return first


class Engine:
    """Synchronous executor for CONGEST node programs.

    Args:
        network: the communication graph and bandwidth limit.
        programs: one program per node (all nodes must be covered).
        seed: seeds the per-node RNGs (each node gets an independent
            child generator, so runs are reproducible but nodes do not
            share randomness — the model has no shared coins).
        max_rounds: execution budget; exceeded budgets raise
            :class:`RoundLimitExceeded`.
    """

    def __init__(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        stop_on_quiescence: bool = False,
    ):
        missing = set(network.nodes()) - set(programs)
        if missing:
            raise ValueError(f"no program supplied for nodes {sorted(missing)}")
        self.network = network
        self.programs = programs
        if max_rounds is None:
            max_rounds = max(
                DEFAULT_MAX_ROUNDS_FLOOR,
                DEFAULT_MAX_ROUNDS_PER_NODE * network.n,
            )
        self.max_rounds = max_rounds
        #: When set, the run also ends once no messages are in flight, even
        #: if programs have not halted.  This models flooding algorithms
        #: (multi-source BFS, max-id election) whose natural end is network
        #: quiescence; a deployed version would add an O(D) termination-
        #: detection phase, which callers charge separately.
        self.stop_on_quiescence = stop_on_quiescence
        seed_seq = np.random.SeedSequence(seed)
        children = seed_seq.spawn(network.n)
        self.contexts: Dict[int, Context] = {
            v: Context(
                node=v,
                neighbors=network.neighbors(v),
                n=network.n,
                bandwidth=network.bandwidth,
                rng=np.random.default_rng(children[v]),
            )
            for v in network.nodes()
        }

    def run(self) -> RunResult:
        """Execute until every node halts; return outputs and statistics."""
        stats = TrafficStats()
        in_flight: List[Message] = []

        # Round 0: local initialization, no communication charged.
        for v, program in self.programs.items():
            ctx = self.contexts[v]
            program.on_start(ctx)
            in_flight.extend(ctx._drain_outbox(0))

        rounds = 0
        while True:
            if (
                not in_flight
                and not self._channel_pending()
                and (self._all_halted() or self.stop_on_quiescence)
            ):
                break
            if rounds >= self.max_rounds:
                raise RoundLimitExceeded(self.max_rounds)
            rounds += 1
            self._begin_round(rounds)

            delivered = self._transmit(in_flight, rounds)
            inboxes: Dict[int, List[Message]] = {}
            for msg in delivered:
                inboxes.setdefault(msg.dst, []).append(msg)
                self._on_deliver(msg, rounds)
            stats.record_round(
                len(delivered), sum(m.bits for m in delivered)
            )
            in_flight = []

            for v, program in self.programs.items():
                ctx = self.contexts[v]
                if ctx.halted:
                    # Messages to halted nodes are dropped; well-formed
                    # algorithms never rely on them.
                    continue
                if not self._node_active(v, rounds):
                    # A crashed node neither executes nor receives; its
                    # inbox for this round is lost.
                    continue
                ctx.round = rounds
                program.on_round(ctx, Inbox(inboxes.get(v)))
                in_flight.extend(ctx._drain_outbox(rounds))

        outputs = {v: self.contexts[v].output for v in self.network.nodes()}
        return RunResult(rounds=rounds, outputs=outputs, stats=stats)

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self.contexts.values())

    # ------------------------------------------------------------------
    # fault-injection / observation seam
    # ------------------------------------------------------------------
    # The base implementations describe a perfect synchronous network:
    # every message sent in round r is delivered at the start of round
    # r+1 and every node executes every round.  Subclasses override these
    # hooks to observe traffic (:class:`~repro.congest.tracing.
    # TracingEngine`) or to inject channel and node faults
    # (:class:`repro.faults.FaultyEngine`) without touching the round
    # loop, so every existing NodeProgram runs unmodified under faults.

    def _begin_round(self, round_no: int) -> None:
        """Hook called at the top of every communication round."""

    def _transmit(self, messages: List[Message], round_no: int) -> List[Message]:
        """The channel: decide which in-flight messages arrive this round.

        May drop, corrupt, or hold back messages; held messages must be
        reported via :meth:`_channel_pending` until released.
        """
        return messages

    def _channel_pending(self) -> bool:
        """Whether the channel still holds undelivered (delayed) messages."""
        return False

    def _node_active(self, v: int, round_no: int) -> bool:
        """Whether node ``v`` executes this round (``False`` = crashed)."""
        return True

    def _on_deliver(self, msg: Message, round_no: int) -> None:
        """Observation hook invoked for every delivered message."""


def run_program(
    network: Network,
    programs: Dict[int, NodeProgram],
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    stop_on_quiescence: bool = False,
) -> RunResult:
    """Convenience wrapper: build an engine and run it."""
    engine = Engine(
        network,
        programs,
        seed=seed,
        max_rounds=max_rounds,
        stop_on_quiescence=stop_on_quiescence,
    )
    return engine.run()
