"""Message and inbox types for the CONGEST engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from .encoding import payload_bits, unwrap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cost import LinkCostModel


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes:
        src: sender node id.
        dst: receiver node id.
        payload: the carried value (possibly containing ``Field`` wrappers).
        bits: charged size in bits, computed from the payload at creation.
        round_sent: the round in which the message was sent.
    """

    src: int
    dst: int
    payload: Any
    bits: int
    round_sent: int

    @staticmethod
    def make(src: int, dst: int, payload: Any, round_sent: int) -> "Message":
        return Message(src, dst, payload, payload_bits(payload), round_sent)

    @property
    def value(self) -> Any:
        """The payload with ``Field`` wrappers stripped."""
        return unwrap(self.payload)


class Inbox:
    """Messages delivered to one node at the start of a round.

    The per-sender index is built lazily (most programs only iterate), and
    keeps *every* message per sender in arrival order: two messages from
    the same ``src`` can legitimately arrive in one round when a delayed
    message (``FaultyEngine`` delay faults) lands next to a fresh one.
    """

    def __init__(self, messages: Optional[List[Message]] = None):
        self._messages: List[Message] = list(messages or [])
        self._by_src: Optional[Dict[int, List[Message]]] = None

    @classmethod
    def _wrap(cls, messages: List[Message]) -> "Inbox":
        """Adopt ``messages`` without copying (engine hot path).

        The caller retains ownership of the list and may reuse it after
        the round ends; an Inbox is only valid within its round.
        """
        inbox = cls.__new__(cls)
        inbox._messages = messages
        inbox._by_src = None
        return inbox

    def _index(self) -> Dict[int, List[Message]]:
        if self._by_src is None:
            by_src: Dict[int, List[Message]] = {}
            for m in self._messages:
                by_src.setdefault(m.src, []).append(m)
            self._by_src = by_src
        return self._by_src

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def from_node(self, src: int) -> Optional[Message]:
        """The *first* message received from ``src`` this round, if any."""
        msgs = self._index().get(src)
        return msgs[0] if msgs else None

    def all_from_node(self, src: int) -> List[Message]:
        """Every message received from ``src`` this round, in arrival order."""
        return list(self._index().get(src, ()))

    def senders(self) -> List[int]:
        return [m.src for m in self._messages]

    def values(self) -> List[Any]:
        return [m.value for m in self._messages]


@dataclass
class TrafficStats:
    """Aggregate traffic counters maintained by the engine."""

    messages: int = 0
    bits: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_round_bits: List[int] = field(default_factory=list)

    def record_round(self, messages: int, bits: int) -> None:
        self.messages += messages
        self.bits += bits
        self.per_round_messages.append(messages)
        self.per_round_bits.append(bits)

    @property
    def max_messages_in_round(self) -> int:
        return max(self.per_round_messages, default=0)

    def wall_clock_us(self, link: "LinkCostModel") -> float:
        """Price the executed rounds on ``link`` ("Mind the Õ").

        A synchronous round's wall clock is set by its *largest* message;
        per-edge sizes aren't tracked, so each round is charged at its
        mean message size (total bits / messages) — a lower bound on the
        max-message charge and exact when messages are uniform words, as
        every framework protocol here sends.  Empty rounds still pay the
        link latency: the round barrier doesn't come for free.
        """
        total = 0.0
        for msgs, bits in zip(self.per_round_messages, self.per_round_bits):
            mean_bits = bits // msgs if msgs else 0
            total += link.message_time_us(mean_bits)
        return total
