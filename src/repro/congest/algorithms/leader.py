"""Leader election by max-id flooding, O(D) rounds.

The paper notes "leader election can be done in O(D) in the CONGEST model,
so if no leader is provided, we can for example take the node with the
largest identifier."  This module implements exactly that: every node
floods the largest identifier it has seen, forwarding only improvements,
and the flood quiesces after ecc(argmax) ≤ D rounds.  Termination
detection in a deployed system adds O(D); callers charge it via the
returned round count when they need a self-terminating protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..encoding import Field
from ..engine import run_program
from ..messages import Inbox
from ..network import Network
from ..program import Context, NodeProgram


@dataclass
class LeaderResult:
    leader: int
    rounds: int


class MaxIdFloodProgram(NodeProgram):
    """Flood the largest identifier seen; quiesces in ecc(argmax) rounds."""

    # Forwards only improvements, which can only arrive as messages; a
    # silent round is a no-op, so the engine may skip it.
    always_active = False

    def __init__(self, node: int):
        self.node = node
        self.best = node

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(Field(self.best, ctx.n))
        ctx.output = self.best

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        incoming = max(inbox.values(), default=self.best)
        if incoming > self.best:
            self.best = incoming
            ctx.broadcast(Field(self.best, ctx.n))
        ctx.output = self.best


class BoundedMaxIdFloodProgram(MaxIdFloodProgram):
    """Max-id flooding that halts itself after a fixed round horizon.

    The plain :class:`MaxIdFloodProgram` relies on the engine's
    quiescence detection, which is unsound on a lossy network (a dropped
    message makes the network transiently silent mid-flood).  This
    variant instead runs for ``horizon`` rounds — any upper bound on the
    maximum eccentricity, e.g. ``n - 1`` — and then halts with the best
    identifier seen, making it usable under the fault-resilient wrapper
    in :mod:`repro.faults.resilience`.
    """

    # Counts rounds to its horizon even when the network is silent, so it
    # must execute every round.
    always_active = True

    def __init__(self, node: int, horizon: int):
        super().__init__(node)
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        super().on_round(ctx, inbox)
        if ctx.round >= self.horizon:
            ctx.halt(output=self.best)


def elect_leader(network: Network, seed: Optional[int] = None) -> LeaderResult:
    """Run max-id flooding; every node learns the leader's id."""
    programs = {v: MaxIdFloodProgram(v) for v in network.nodes()}
    result = run_program(
        network, programs, seed=seed, stop_on_quiescence=True
    )
    leaders = set(result.outputs.values())
    if len(leaders) != 1:
        raise AssertionError(f"leader election did not converge: {leaders}")
    return LeaderResult(leader=leaders.pop(), rounds=result.rounds)
