"""Pipelined convergecast and broadcast over a precomputed BFS tree.

These are the CONGEST workhorses behind the paper's Lemma 7 and Theorem 8:
moving a length-t vector of bounded values between the leader and the rest
of the network in O(depth + t) rounds by streaming one coordinate per round
along every tree edge.

* :func:`pipelined_upcast` — every node holds a length-t vector; the root
  learns the coordinatewise ⊕-combination over all nodes.  This is exactly
  the query-result aggregation step of Theorem 8 ("leaf nodes send the
  query results to their parent, who computes ⊕ ... as soon as the leaves
  are done with the first query value they can start with the second").
* :func:`pipelined_downcast` — the root holds a length-t vector; every node
  learns it.  This is the index-distribution step (and Lemma 7's classical
  shadow: a register streamed down the tree, each log(n)-bit chunk
  forwarded the round after it arrives).

Both run on the engine with real messages and return measured rounds,
which benchmarks compare against the depth + t bound.

Each transfer also exists as a *round generator* (:func:`upcast_steps`,
:func:`downcast_steps`): one engine round per ``next()``, final value via
``StopIteration``.  The blocking functions drive the same generators, so
the stepwise path — which the :mod:`repro.serve` daemon interleaves on an
event loop — is bit-identical to the monolithic one by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..encoding import Field
from ..engine import Engine, run_program
from ..messages import Inbox
from ..network import Network
from ..program import Context, NodeProgram
from .bfs import BFSResult


def drive(gen: Iterator) -> object:
    """Drain a round generator and return its ``StopIteration`` value."""
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


class UpcastProgram(NodeProgram):
    """Stream a t-vector up the tree, combining coordinatewise."""

    # Leaves stream one coordinate per round (the engine's "sent last
    # round" carry keeps them scheduled); interior nodes advance only on
    # deliveries.  A silent round is a no-op — except for a childless
    # root, which advances its cursor locally every round; that degenerate
    # case opts back into always-on execution below.
    always_active = False

    def __init__(
        self,
        node: int,
        parent: Optional[int],
        children: Sequence[int],
        values: Sequence[int],
        combine: Callable[[int, int], int],
        domain: int,
        length: int,
    ):
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.acc: List[int] = list(values)
        if len(self.acc) != length:
            raise ValueError(
                f"node {node} holds {len(self.acc)} values, expected {length}"
            )
        self.combine = combine
        self.domain = domain
        self.length = length
        self.received_count = [0] * length
        self.next_to_send = 0
        if parent is None and not self.children:
            self.always_active = True

    def _ready(self, index: int) -> bool:
        return self.received_count[index] == len(self.children)

    def _push(self, ctx: Context) -> None:
        if self.next_to_send >= self.length:
            return
        i = self.next_to_send
        if not self._ready(i):
            return
        if self.parent is not None:
            ctx.send(
                self.parent,
                (Field(i, max(self.length, 1)), Field(self.acc[i], self.domain)),
            )
        self.next_to_send += 1
        if self.next_to_send >= self.length:
            ctx.halt(output=tuple(self.acc) if self.parent is None else None)

    def on_start(self, ctx: Context) -> None:
        if self.length == 0:
            ctx.halt(output=() if self.parent is None else None)
            return
        self._push(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            index, value = msg.value
            self.acc[index] = self.combine(self.acc[index], value)
            self.received_count[index] += 1
        # One coordinate can leave per round (single parent edge), but a
        # newly completed coordinate may also unblock this round's send.
        self._push(ctx)


class DowncastProgram(NodeProgram):
    """Stream a t-vector from the root down the tree, pipelined."""

    # Same scheduling shape as UpcastProgram: the root streams (carried by
    # its own sends), everyone else advances on deliveries only.
    always_active = False

    def __init__(
        self,
        node: int,
        parent: Optional[int],
        children: Sequence[int],
        values: Optional[Sequence[int]],
        domain: int,
        length: int,
    ):
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.domain = domain
        self.length = length
        self.received: List[Optional[int]] = (
            list(values) if values is not None else [None] * length
        )
        self.next_to_send = 0
        if parent is None and not self.children:
            self.always_active = True

    def _push(self, ctx: Context) -> None:
        if self.next_to_send >= self.length:
            return
        i = self.next_to_send
        if self.received[i] is None:
            return
        for child in self.children:
            ctx.send(
                child,
                (Field(i, max(self.length, 1)), Field(self.received[i], self.domain)),
            )
        self.next_to_send += 1
        if self.next_to_send >= self.length:
            ctx.halt(output=tuple(self.received))

    def on_start(self, ctx: Context) -> None:
        if self.length == 0:
            ctx.halt(output=())
            return
        self._push(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            index, value = msg.value
            self.received[index] = value
        self._push(ctx)


def build_upcast_programs(
    network: Network,
    tree: BFSResult,
    values: Dict[int, Sequence[int]],
    combine: Callable[[int, int], int],
    domain: int,
) -> Dict[int, UpcastProgram]:
    """Instantiate one :class:`UpcastProgram` per node for a convergecast.

    Factored out so the fault-resilient wrapper in
    :mod:`repro.faults.resilience` can run the identical programs
    through a lossy engine.
    """
    children = tree.children()
    lengths = {len(v) for v in values.values()}
    if len(lengths) != 1:
        raise ValueError(f"all nodes must hold equal-length vectors, got {lengths}")
    length = lengths.pop()
    return {
        v: UpcastProgram(
            v,
            tree.parent.get(v),
            children.get(v, []),
            values[v],
            combine,
            domain,
            length,
        )
        for v in network.nodes()
    }


def upcast_steps(
    network: Network,
    tree: BFSResult,
    values: Dict[int, Sequence[int]],
    combine: Callable[[int, int], int],
    domain: int,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> Iterator[int]:
    """Stepwise convergecast: yields each engine round number as it runs.

    The generator's return value is ``(combined vector at the root,
    measured rounds)`` — the same tuple :func:`pipelined_upcast` returns.
    ``schedule`` selects the engine's execution strategy;
    ``"vectorized"`` bulk-executes the whole convergecast column-major
    (bit-identical, falling back per-node if the combine has no
    registered ufunc).
    """
    programs = build_upcast_programs(network, tree, values, combine, domain)
    stepper = Engine(network, programs, seed=seed, schedule=schedule).stepper()
    while stepper.step():
        yield stepper.rounds
    result = stepper.result
    return tuple(result.outputs[tree.root]), result.rounds


def pipelined_upcast(
    network: Network,
    tree: BFSResult,
    values: Dict[int, Sequence[int]],
    combine: Callable[[int, int], int],
    domain: int,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> Tuple[Tuple[int, ...], int]:
    """Coordinatewise ⊕ of per-node t-vectors, collected at the tree root.

    Returns:
        (combined vector at the root, measured rounds).
    """
    return drive(
        upcast_steps(
            network, tree, values, combine, domain, seed=seed, schedule=schedule
        )
    )


def downcast_steps(
    network: Network,
    tree: BFSResult,
    values: Sequence[int],
    domain: int,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> Iterator[int]:
    """Stepwise broadcast: yields each engine round number as it runs.

    The generator's return value is ``(per-node received vectors,
    measured rounds)`` — the same tuple :func:`pipelined_downcast` returns.
    ``schedule`` selects the engine's execution strategy (see
    :class:`~repro.congest.engine.Engine`).
    """
    children = tree.children()
    length = len(values)
    programs = {
        v: DowncastProgram(
            v,
            tree.parent.get(v),
            children.get(v, []),
            list(values) if v == tree.root else None,
            domain,
            length,
        )
        for v in network.nodes()
    }
    stepper = Engine(network, programs, seed=seed, schedule=schedule).stepper()
    while stepper.step():
        yield stepper.rounds
    result = stepper.result
    received = {v: tuple(result.outputs[v]) for v in network.nodes()}
    return received, result.rounds


def pipelined_downcast(
    network: Network,
    tree: BFSResult,
    values: Sequence[int],
    domain: int,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> Tuple[Dict[int, Tuple[int, ...]], int]:
    """Broadcast a t-vector from the tree root to every node.

    Returns:
        (per-node received vectors, measured rounds).
    """
    return drive(
        downcast_steps(network, tree, values, domain, seed=seed, schedule=schedule)
    )


def aggregate_single(
    network: Network,
    tree: BFSResult,
    values: Dict[int, int],
    combine: Callable[[int, int], int],
    domain: int,
    seed: Optional[int] = None,
    schedule: str = "active",
) -> Tuple[int, int]:
    """Convergecast a single bounded value per node to the root.

    Returns:
        (combined value, measured rounds).
    """
    vectors = {v: [values[v]] for v in network.nodes()}
    combined, rounds = pipelined_upcast(
        network, tree, vectors, combine, domain, seed=seed, schedule=schedule
    )
    return combined[0], rounds


class GatherProgram(NodeProgram):
    """Stream every node's tagged values to the root (no combining).

    Unlike :class:`UpcastProgram`, nothing is merged: the root ends up
    holding all n·t (origin, value) pairs.  This is the communication
    pattern of the classical "stream everything to a leader" baselines;
    pipelining makes it O(depth + n·t) rounds — each tree edge must carry
    everything its subtree holds, so the root's incident edges are the
    bottleneck the Ω(k/log n) lower bounds talk about.
    """

    # Streams its queue (carried by its own sends) and otherwise advances
    # only on deliveries (done markers); a silent round is a no-op.
    always_active = False

    def __init__(
        self,
        node: int,
        parent: Optional[int],
        children: Sequence[int],
        values: Sequence[int],
        domain: int,
        n: int,
    ):
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.domain = domain
        self.n = n
        self.queue: List[Tuple[int, int]] = [(node, v) for v in values]
        self.expected_children = set(self.children)
        self.done_received = False

    def _push(self, ctx: Context) -> None:
        if self.parent is None:
            return
        if self.queue:
            origin, value = self.queue.pop(0)
            ctx.send(
                self.parent,
                (False, Field(origin, self.n), Field(value, self.domain)),
            )
        elif not self.expected_children and not self.done_received:
            # A final "subtree drained" marker so ancestors can terminate.
            ctx.send(self.parent, (True, Field(0, self.n), Field(0, self.domain)))
            self.done_received = True
            ctx.halt()

    def on_start(self, ctx: Context) -> None:
        if self.parent is None and not self.children:
            ctx.halt(output=tuple(self.queue))
            return
        self._push(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            done, origin, value = msg.value
            if done:
                self.expected_children.discard(msg.src)
            else:
                self.queue.append((origin, value))
        if self.parent is None:
            if not self.expected_children:
                ctx.halt(output=tuple(self.queue))
            return
        self._push(ctx)


def pipelined_gather(
    network: Network,
    tree: BFSResult,
    values: Dict[int, Sequence[int]],
    domain: int,
    seed: Optional[int] = None,
) -> Tuple[Dict[int, Tuple[int, ...]], int]:
    """Collect every node's values (tagged by origin) at the tree root.

    Returns:
        (mapping origin -> tuple of that node's values as received by the
        root, measured rounds ≈ depth + total value count).
    """
    children = tree.children()
    programs = {
        v: GatherProgram(
            v,
            tree.parent.get(v),
            children.get(v, []),
            list(values[v]),
            domain,
            network.n,
        )
        for v in network.nodes()
    }
    result = run_program(network, programs, seed=seed)
    collected: Dict[int, List[int]] = {}
    root_items = result.outputs[tree.root] or ()
    for origin, value in root_items:
        collected.setdefault(origin, []).append(value)
    return (
        {origin: tuple(vals) for origin, vals in collected.items()},
        result.rounds,
    )
