"""Pipelined multi-source BFS in O(|S| + D) rounds.

This implements the classical primitive behind the paper's Lemma 20
(attributed to [PRT12; HW12]): BFS trees from every source in a set S can
be built *simultaneously* in O(|S| + D) rounds, by letting tokens of
different sources share edges under a priority schedule.

Protocol.  A token is a pair ``(source, dist)`` of 2·ceil(log2 n) bits.
Every node keeps its best known distance per source.  When a token improves
a distance, the node queues ``(source, dist+1)`` for every neighbor.  Each
round it sends, per neighbor, the queued token with lexicographically
smallest ``(dist, source_rank)``; stale tokens (no longer matching the best
known distance) are dropped.  The standard argument shows token
``(s, d)`` is delivered everywhere by round ``d + rank(s) + O(1)``, giving
the O(|S| + D) bound, which our benchmarks measure directly.

The flood terminates by network quiescence; a deployed implementation adds
an O(D) termination-detection phase on a BFS tree, which callers charge via
:func:`eccentricities_of_sources`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..encoding import Field
from ..engine import run_program
from ..messages import Inbox
from ..network import Network
from ..program import Context, NodeProgram
from .aggregate import pipelined_downcast, pipelined_upcast
from .bfs import BFSResult


@dataclass
class MultiBFSResult:
    """Distances from every source to every node, plus round usage."""

    sources: List[int]
    rounds: int
    dist: Dict[int, Dict[int, int]]  # dist[source][node]

    def eccentricity(self, source: int) -> int:
        return max(self.dist[source].values())


class MultiSourceBFSProgram(NodeProgram):
    """Node program for the prioritized multi-source flood."""

    # Message-driven: token queues only fill on deliveries, and a node
    # with queued tokens sent last round (one per neighbor per round), so
    # the engine's "sent last round" carry keeps it scheduled until its
    # queues drain.  A silent round is a no-op.
    always_active = False

    def __init__(self, node: int, sources: Sequence[int]):
        self.node = node
        self.sources = list(sources)
        self.rank = {s: i for i, s in enumerate(self.sources)}
        self.best: Dict[int, int] = {}
        # Per-neighbor priority queue of (dist, source_rank, source) tokens.
        self.queues: Dict[int, list] = {}

    def _enqueue_all(self, ctx: Context, source: int, dist: int) -> None:
        for u in ctx.neighbors:
            self.queues.setdefault(u, [])
            heapq.heappush(self.queues[u], (dist, self.rank[source], source))

    def _flush(self, ctx: Context) -> None:
        for u, queue in self.queues.items():
            while queue:
                dist, _, source = heapq.heappop(queue)
                if self.best.get(source) != dist - 1:
                    # Stale: we have since learned a shorter distance, so a
                    # fresher token for this source is already queued.
                    continue
                ctx.send(
                    u,
                    (Field(source, ctx.n), Field(dist, 2 * ctx.n)),
                )
                break

    def on_start(self, ctx: Context) -> None:
        if self.node in self.rank:
            self.best[self.node] = 0
            self._enqueue_all(ctx, self.node, 1)
        self._flush(ctx)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        for msg in inbox:
            source, dist = msg.value
            if dist < self.best.get(source, dist + 1):
                self.best[source] = dist
                self._enqueue_all(ctx, source, dist + 1)
        self._flush(ctx)
        self.output_snapshot(ctx)

    def output_snapshot(self, ctx: Context) -> None:
        ctx.output = dict(self.best)


def multi_source_bfs(
    network: Network,
    sources: Sequence[int],
    seed: Optional[int] = None,
) -> MultiBFSResult:
    """Flood BFS tokens from all ``sources``; measure rounds to quiescence."""
    sources = list(dict.fromkeys(sources))
    programs = {
        v: MultiSourceBFSProgram(v, sources) for v in network.nodes()
    }
    result = run_program(
        network, programs, seed=seed, stop_on_quiescence=True
    )
    dist: Dict[int, Dict[int, int]] = {s: {} for s in sources}
    for v in network.nodes():
        best = result.outputs[v] or {}
        for s, d in best.items():
            dist[s][v] = d
    # Source distances to themselves are 0 even if the node never spoke.
    for s in sources:
        dist[s][s] = 0
    return MultiBFSResult(sources=sources, rounds=result.rounds, dist=dist)


def eccentricities_of_sources(
    network: Network,
    sources: Sequence[int],
    tree: BFSResult,
    seed: Optional[int] = None,
) -> tuple:
    """Lemma 20: every source learns its eccentricity, in O(|S| + D) rounds.

    Runs the prioritized multi-source flood, then aggregates the per-source
    maxima up the supplied leader BFS ``tree`` (pipelined convergecast) and
    broadcasts the results back down, so both the leader and the sources
    know every eccentricity.

    Returns:
        (eccentricities dict, total measured rounds)
    """
    flood = multi_source_bfs(network, sources, seed=seed)
    per_node_vectors = {
        v: [flood.dist[s].get(v, 0) for s in flood.sources]
        for v in network.nodes()
    }
    domain = 2 * network.n
    maxima, up_rounds = pipelined_upcast(
        network, tree, per_node_vectors, combine=max, domain=domain, seed=seed
    )
    _, down_rounds = pipelined_downcast(
        network, tree, maxima, domain=domain, seed=seed
    )
    eccs = {s: maxima[i] for i, s in enumerate(flood.sources)}
    total = flood.rounds + up_rounds + down_rounds
    return eccs, total
