"""Low-diameter, distance-separated clustering (substitute for EFFKO21 Thm 17).

The paper's Lemma 24 cites Eden, Fiat, Fischer, Kuhn, and Oshman: for any
d ≥ 2 one can compute, w.h.p. in O(d log² n) CONGEST rounds, clusters of
diameter O(d log n) covering every node, colored with O(log n) colors such
that same-color clusters are at pairwise distance ≥ d.

We substitute a Miller–Peng–Xu exponential-shift ball carving: every node u
draws δ_u ~ Exp(β) with β = 1/(2d) and joins the cluster of the center
minimizing dist(u, v) − δ_v (fractional tie-breaking keeps clusters
connected).  Cluster (strong) diameter is O(d log n) w.h.p.  Colors are
then assigned greedily on the cluster conflict graph (clusters within
distance < d conflict).  The construction is computed centrally and its
round cost charged at the cited O(d log² n) bound via
:meth:`repro.core.cost.CostModel.clustering_rounds`; unlike a citation,
every guarantee is *checked*: :func:`verify_clustering` asserts coverage,
connectivity, diameter, and separation, and tests/benchmarks measure the
realized color count (which directly multiplies the cycle-detection cost
in Lemma 25, so honesty is preserved even if greedy uses more than
O(log n) colors on an adversarial instance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx
import numpy as np

from ..network import Network


@dataclass
class Clustering:
    """A colored clustering of a network."""

    d: int
    clusters: List[Set[int]]
    colors: List[int]
    cluster_of: Dict[int, int]
    #: Charged CONGEST rounds for building the clustering (formula mode).
    charged_rounds: int = 0

    @property
    def num_colors(self) -> int:
        return max(self.colors) + 1 if self.colors else 0

    def clusters_of_color(self, color: int) -> List[int]:
        return [i for i, c in enumerate(self.colors) if c == color]

    def max_cluster_diameter(self, network: Network) -> int:
        worst = 0
        for cluster in self.clusters:
            sub = network.graph.subgraph(cluster)
            if len(cluster) > 1:
                worst = max(worst, nx.diameter(sub))
        return worst


def _exponential_shift_partition(
    network: Network, beta: float, rng: np.random.Generator
) -> Dict[int, int]:
    """MPX ball carving: node -> center, via shifted multi-source Dijkstra."""
    n = network.n
    delta = rng.exponential(scale=1.0 / beta, size=n)
    # Fractional jitter keeps all shifted distances distinct so that every
    # cluster is connected (standard MPX tie-breaking).
    jitter = rng.uniform(0.0, 0.25, size=n)
    max_delta = float(delta.max())
    g = nx.Graph()
    g.add_edges_from(network.graph.edges())
    g.add_nodes_from(network.graph.nodes())
    virtual = n  # virtual super-source
    for u in range(n):
        g.add_edge(virtual, u, weight=max_delta - delta[u] + jitter[u] * 1e-9)
    for u, v in network.graph.edges():
        g[u][v]["weight"] = 1.0
    _, paths = nx.single_source_dijkstra(g, virtual, weight="weight")
    center_of: Dict[int, int] = {}
    for v in range(n):
        # The first hop after the virtual source is v's winning center.
        center_of[v] = paths[v][1]
    return center_of


def _color_clusters_greedy(
    network: Network, clusters: List[Set[int]], d: int
) -> List[int]:
    """Greedy coloring of the conflict graph (clusters closer than d)."""
    num = len(clusters)
    # Multi-source BFS from each cluster up to depth d-1 marks conflicts.
    conflicts: List[Set[int]] = [set() for _ in range(num)]
    node_cluster = {}
    for i, cluster in enumerate(clusters):
        for v in cluster:
            node_cluster[v] = i
    for i, cluster in enumerate(clusters):
        frontier = set(cluster)
        seen = set(cluster)
        for _ in range(d - 1):
            nxt = set()
            for v in frontier:
                for u in network.neighbors(v):
                    if u not in seen:
                        nxt.add(u)
                        seen.add(u)
            frontier = nxt
            if not frontier:
                break
        for v in seen:
            j = node_cluster[v]
            if j != i:
                conflicts[i].add(j)
                conflicts[j].add(i)
    colors = [-1] * num
    for i in sorted(range(num), key=lambda i: -len(conflicts[i])):
        taken = {colors[j] for j in conflicts[i] if colors[j] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[i] = color
    return colors


def build_clustering(
    network: Network,
    d: int,
    seed: Optional[int] = None,
) -> Clustering:
    """Build a d-separated low-diameter colored clustering (Lemma 24).

    Args:
        network: the graph to cluster.
        d: required pairwise distance between same-color clusters.
        seed: RNG seed for the exponential shifts.

    Returns:
        a verified :class:`Clustering`, with ``charged_rounds`` set to the
        cited O(d log² n) CONGEST cost.
    """
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    rng = np.random.default_rng(seed)
    beta = 1.0 / (2.0 * d)
    center_of = _exponential_shift_partition(network, beta, rng)
    by_center: Dict[int, Set[int]] = {}
    for v, c in center_of.items():
        by_center.setdefault(c, set()).add(v)
    clusters = [by_center[c] for c in sorted(by_center)]
    colors = _color_clusters_greedy(network, clusters, d)
    cluster_of = {}
    for i, cluster in enumerate(clusters):
        for v in cluster:
            cluster_of[v] = i
    log_n = max(1, math.ceil(math.log2(max(network.n, 2))))
    charged = d * log_n * log_n
    return Clustering(
        d=d,
        clusters=clusters,
        colors=colors,
        cluster_of=cluster_of,
        charged_rounds=charged,
    )


def verify_clustering(network: Network, clustering: Clustering) -> None:
    """Assert the Lemma 24 interface guarantees; raise AssertionError if violated."""
    covered = set()
    for cluster in clustering.clusters:
        covered |= cluster
        sub = network.graph.subgraph(cluster)
        assert nx.is_connected(sub), "cluster is not connected"
    assert covered == set(network.nodes()), "clustering does not cover all nodes"

    d = clustering.d
    log_n = max(1, math.ceil(math.log2(max(network.n, 2))))
    max_diam = clustering.max_cluster_diameter(network)
    bound = max(8 * d * log_n, 8)
    assert max_diam <= bound, (
        f"cluster diameter {max_diam} exceeds O(d log n) bound {bound}"
    )

    # Same-color clusters must be at pairwise distance >= d.
    for color in range(clustering.num_colors):
        ids = clustering.clusters_of_color(color)
        for idx, i in enumerate(ids):
            if not clustering.clusters[i]:
                continue
            dist = _distance_to_set(network, clustering.clusters[i], limit=d)
            for j in ids[idx + 1 :]:
                closest = min(
                    (dist.get(v, d) for v in clustering.clusters[j]), default=d
                )
                assert closest >= d, (
                    f"same-color clusters {i},{j} at distance {closest} < {d}"
                )


def _distance_to_set(network: Network, sources: Set[int], limit: int) -> Dict[int, int]:
    """BFS distances from a node set, truncated at ``limit``."""
    dist = {v: 0 for v in sources}
    frontier = set(sources)
    level = 0
    while frontier and level < limit:
        level += 1
        nxt = set()
        for v in frontier:
            for u in network.neighbors(v):
                if u not in dist:
                    dist[u] = level
                    nxt.add(u)
        frontier = nxt
    return dist
