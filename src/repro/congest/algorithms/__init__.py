"""Distributed algorithms running on the CONGEST engine."""

from .aggregate import (
    aggregate_single,
    pipelined_downcast,
    pipelined_upcast,
)
from .bfs import BFSResult, bfs_with_echo
from .clustering import Clustering, build_clustering, verify_clustering
from .leader import LeaderResult, elect_leader
from .multibfs import (
    MultiBFSResult,
    eccentricities_of_sources,
    multi_source_bfs,
)

__all__ = [
    "aggregate_single",
    "pipelined_downcast",
    "pipelined_upcast",
    "BFSResult",
    "bfs_with_echo",
    "Clustering",
    "build_clustering",
    "verify_clustering",
    "LeaderResult",
    "elect_leader",
    "MultiBFSResult",
    "eccentricities_of_sources",
    "multi_source_bfs",
]
