"""Single-source BFS with echo termination.

This is the folklore BFS-tree construction from the paper's Lemma 7
footnote, augmented with the standard echo (convergecast) phase so that

* every node learns its distance to the root and its tree parent,
* the root learns its own eccentricity (the maximum BFS depth), and
* the algorithm terminates itself in O(D) rounds without knowing D.

Protocol.  The root floods a TOKEN carrying the hop distance.  A node
adopting a parent re-floods the token to its other neighbors and waits for
one response per neighbor: an ECHO (the neighbor became a child and reports
its subtree's maximum depth) or a NACK (the neighbor was reached some other
way).  Tokens crossing on an edge act as implicit NACKs and are answered
with an explicit NACK; a node that must simultaneously token and nack the
same neighbor sends the combined TOKEN_NACK.  When all responses are in, a
node echoes the maximum depth of its subtree to its parent and halts.

Every message is a (tag, value) pair of 2 + ceil(log2 2n) bits, within the
CONGEST bandwidth.  The measured round count is ≤ 3D + O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..encoding import Field
from ..engine import RunResult, run_program
from ..messages import Inbox
from ..network import Network
from ..program import Context, NodeProgram

TOKEN = 0
NACK = 1
ECHO = 2
TOKEN_NACK = 3


@dataclass
class BFSResult:
    """Outcome of a BFS-with-echo run."""

    root: int
    rounds: int
    dist: Dict[int, int]
    parent: Dict[int, Optional[int]]
    eccentricity: int

    def children(self) -> Dict[int, list]:
        """Tree children of every node, derived from the parent map."""
        kids: Dict[int, list] = {v: [] for v in self.dist}
        for v, p in self.parent.items():
            if p is not None:
                kids[p].append(v)
        return kids

    @property
    def depth(self) -> int:
        return self.eccentricity


class BFSEchoProgram(NodeProgram):
    """Node program implementing BFS + echo from a designated root."""

    # Purely message-driven: a silent round changes no state (tokens,
    # nacks and echoes all arrive as messages), so the engine may skip it.
    always_active = False

    def __init__(self, node: int, root: int):
        self.node = node
        self.root = root
        self.dist: Optional[int] = None
        self.parent: Optional[int] = None
        self.pending: Set[int] = set()
        self.max_depth = 0
        self.echo_sent = False

    # -- helpers -------------------------------------------------------

    def _token_payload(self, ctx: Context, tag: int) -> tuple:
        return (Field(tag, 4), Field(self.dist, 2 * ctx.n))

    def _finish_if_done(self, ctx: Context) -> None:
        if self.dist is None or self.pending or self.echo_sent:
            return
        self.echo_sent = True
        depth = max(self.max_depth, self.dist)
        if self.node == self.root:
            ctx.halt(output=("ecc", depth))
        else:
            ctx.send(self.parent, (Field(ECHO, 4), Field(depth, 2 * ctx.n)))
            ctx.halt(output=("dist", self.dist, self.parent))

    def _adopt(self, ctx: Context, token_senders: Set[int]) -> None:
        """Become part of the tree: pick a parent, re-flood, nack the rest."""
        self.dist = ctx.round
        self.parent = min(token_senders)
        others = set(ctx.neighbors) - {self.parent}
        for u in others:
            tag = TOKEN_NACK if u in token_senders else TOKEN
            ctx.send(u, self._token_payload(ctx, tag))
        self.pending = set(others)

    # -- engine hooks ---------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if self.node != self.root:
            return
        self.dist = 0
        self.parent = None
        if not ctx.neighbors:
            ctx.halt(output=("ecc", 0))
            return
        for u in ctx.neighbors:
            ctx.send(u, self._token_payload(ctx, TOKEN))
        self.pending = set(ctx.neighbors)

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        token_senders: Set[int] = set()
        for msg in inbox:
            tag, value = msg.value
            if tag in (TOKEN, TOKEN_NACK):
                token_senders.add(msg.src)
                if tag == TOKEN_NACK:
                    self.pending.discard(msg.src)
            elif tag == NACK:
                self.pending.discard(msg.src)
            elif tag == ECHO:
                self.pending.discard(msg.src)
                self.max_depth = max(self.max_depth, value)

        if token_senders:
            if self.dist is None:
                self._adopt(ctx, token_senders)
            else:
                # Late or crossing tokens: we are already in the tree, so
                # every token sender learns we are not its child.
                for u in token_senders:
                    if u != self.parent:
                        ctx.send(u, (Field(NACK, 4), Field(0, 2 * ctx.n)))

        self._finish_if_done(ctx)


def bfs_result_from_run(root: int, result: RunResult) -> BFSResult:
    """Assemble a :class:`BFSResult` from a finished engine run.

    Shared by the plain runner below and the fault-resilient wrapper in
    :mod:`repro.faults.resilience`, which drives the same programs
    through a lossy engine.
    """
    dist: Dict[int, int] = {root: 0}
    parent: Dict[int, Optional[int]] = {root: None}
    ecc = 0
    for v, out in result.outputs.items():
        if out is None:
            continue
        if out[0] == "ecc":
            ecc = out[1]
        elif out[0] == "dist":
            dist[v] = out[1]
            parent[v] = out[2]
    return BFSResult(
        root=root, rounds=result.rounds, dist=dist, parent=parent,
        eccentricity=ecc,
    )


def bfs_with_echo(
    network: Network, root: int, seed: Optional[int] = None
) -> BFSResult:
    """Run BFS + echo from ``root``; return distances, parents, rounds, ecc."""
    programs = {
        v: BFSEchoProgram(v, root) for v in network.nodes()
    }
    result: RunResult = run_program(network, programs, seed=seed)
    return bfs_result_from_run(root, result)
