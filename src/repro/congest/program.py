"""Node program API for the CONGEST engine.

A distributed algorithm is a :class:`NodeProgram` subclass; the engine
instantiates one program object per node (or the caller supplies
pre-configured instances, e.g. carrying each node's private input) and
drives them through synchronous rounds:

* ``on_start(ctx)`` runs once, before any communication.  Sends issued here
  are delivered in round 1.
* ``on_round(ctx, inbox)`` runs every round on every non-halted node whose
  program is :attr:`~NodeProgram.always_active` (the default).  Programs
  whose ``on_round`` is a pure no-op on silent rounds — no state change, no
  sends, no RNG draws when the inbox is empty and the previous round sent
  nothing — may set ``always_active = False``; the engine then skips them
  on rounds where they provably cannot make progress (active-set
  scheduling), with bit-identical results.  Sends are delivered next round.
* ``ctx.halt(output)`` marks the node finished; the engine stops when all
  nodes have halted.
* ``ctx.request_wakeup(round_no)`` guarantees execution at the given round
  even without deliveries — the escape hatch for event-driven programs
  with timeouts or round-counting phases.

The context enforces the CONGEST rules at send time: one message per edge
direction per round, neighbors only, and the network's bandwidth cap.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from .encoding import payload_bits
from .errors import DuplicateSend, MessageTooLargeError, NotANeighbor
from .messages import Inbox, Message


class Context:
    """Per-node view of the network handed to programs each round.

    Exposes exactly what a node is allowed to know initially: its own id,
    the ids of the peers it may message (physical neighbors under
    CONGEST/LOCAL, all other nodes under CONGEST-CLIQUE), and the network
    size ``n`` (knowledge of n, or a polynomial upper bound, is standard
    in CONGEST algorithms).  ``bandwidth`` is the model's per-link
    per-round bit cap, or ``None`` when unbounded (LOCAL).
    """

    def __init__(
        self,
        node: int,
        neighbors: Tuple[int, ...],
        n: int,
        bandwidth: Optional[int],
        rng: np.random.Generator,
        model: str = "",
    ):
        self.node = node
        self.neighbors = neighbors
        self.n = n
        self.bandwidth = bandwidth
        self.model = model
        self.rng = rng
        self.round: int = 0
        self.output: Any = None
        self._halted = False
        self._outbox: Dict[int, Any] = {}
        self._wake_at: Optional[int] = None

    # ------------------------------------------------------------------
    # actions available to programs
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        """Queue a message for delivery to ``dst`` next round."""
        if dst not in self.neighbors:
            raise NotANeighbor(self.node, dst)
        if dst in self._outbox:
            raise DuplicateSend(self.node, dst, self.round)
        bits = payload_bits(payload)
        if self.bandwidth is not None and bits > self.bandwidth:
            raise MessageTooLargeError(
                self.node, dst, bits, self.bandwidth, model=self.model
            )
        self._outbox[dst] = payload

    def broadcast(self, payload: Any) -> None:
        """Send the same payload to every neighbor."""
        for u in self.neighbors:
            self.send(u, payload)

    def halt(self, output: Any = None) -> None:
        """Stop participating.  Queued sends this round are still delivered."""
        if output is not None:
            self.output = output
        self._halted = True

    def request_wakeup(self, round_no: Optional[int] = None) -> None:
        """Ask the engine to execute this node at ``round_no`` regardless
        of deliveries.

        ``None`` (the default) means the next round.  Requests for earlier
        rounds than one already pending win (the engine honors the minimum).
        Under dense scheduling every node runs every round, so this is a
        no-op; under active-set scheduling it is how an event-driven
        (``always_active = False``) program implements timeouts and
        round-counted phases.
        """
        target = self.round + 1 if round_no is None else round_no
        if target <= self.round:
            raise ValueError(
                f"wakeup round {target} is not after current round {self.round}"
            )
        if self._wake_at is None or target < self._wake_at:
            self._wake_at = target

    # ------------------------------------------------------------------
    # engine-side plumbing
    # ------------------------------------------------------------------

    @property
    def halted(self) -> bool:
        return self._halted

    def _drain_outbox(self, round_no: int) -> list:
        msgs = [
            Message.make(self.node, dst, payload, round_no)
            for dst, payload in self._outbox.items()
        ]
        self._outbox = {}
        return msgs

    def _take_wakeup(self) -> Optional[int]:
        """Pop the pending wakeup request, if any (engine-side)."""
        wake = self._wake_at
        self._wake_at = None
        return wake


class NodeProgram:
    """Base class for CONGEST node programs.

    Subclasses override :meth:`on_round` (and optionally
    :meth:`on_start`).  Instances may carry per-node private input set at
    construction time.
    """

    #: Scheduling contract with the engine.  ``True`` (the conservative
    #: default) means the node must execute every round, exactly like the
    #: classical dense loop.  A program may declare ``False`` when running
    #: it on a *silent* round — empty inbox, nothing sent the round before,
    #: no pending :meth:`Context.request_wakeup` — is a pure no-op: no
    #: state change, no sends, no halt, no RNG draws.  The engine then
    #: skips such rounds entirely (active-set scheduling) with
    #: bit-identical results.
    always_active: bool = True

    def on_start(self, ctx: Context) -> None:
        """Local initialization before round 1.  May send and halt."""

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        """One synchronous round.  Must eventually call ``ctx.halt``."""
        raise NotImplementedError


class IdleProgram(NodeProgram):
    """A program that halts immediately; useful filler in tests."""

    always_active = False

    def on_start(self, ctx: Context) -> None:
        ctx.halt()

    def on_round(self, ctx: Context, inbox: Inbox) -> None:  # pragma: no cover
        ctx.halt()


def make_programs(
    network_size: int, factory, *args, **kwargs
) -> Dict[int, NodeProgram]:
    """Instantiate one program per node from a factory ``factory(v)``."""
    return {v: factory(v, *args, **kwargs) for v in range(network_size)}
