"""Classical CONGEST model substrate: engine, network, node programs.

Quick tour::

    from repro.congest import Network, topologies
    from repro.congest.algorithms import bfs_with_echo, elect_leader

    net = topologies.grid(8, 8)
    leader = elect_leader(net).leader
    tree = bfs_with_echo(net, leader)
    print(tree.eccentricity, tree.rounds)
"""

from .encoding import Field, bits_for_domain, payload_bits
from .engine import Engine, RunResult, run_program
from .errors import (
    BandwidthExceeded,
    CongestError,
    DuplicateSend,
    MessageTooLargeError,
    ModelViolation,
    NotANeighbor,
    RoundLimitExceeded,
)
from .messages import Inbox, Message
from .models import (
    CommModel,
    CongestCliqueModel,
    CongestModel,
    LocalModel,
    resolve_model,
)
from .network import CompleteNetwork, Network
from .program import Context, IdleProgram, NodeProgram

__all__ = [
    "Field",
    "bits_for_domain",
    "payload_bits",
    "Engine",
    "RunResult",
    "run_program",
    "BandwidthExceeded",
    "CongestError",
    "DuplicateSend",
    "MessageTooLargeError",
    "ModelViolation",
    "NotANeighbor",
    "RoundLimitExceeded",
    "Inbox",
    "Message",
    "CommModel",
    "CongestModel",
    "CongestCliqueModel",
    "LocalModel",
    "resolve_model",
    "CompleteNetwork",
    "Network",
    "Context",
    "IdleProgram",
    "NodeProgram",
]
