"""Network topology wrapper for the CONGEST model.

A :class:`Network` pins down everything the model needs about the
communication graph: the node set (integers ``0..n-1``), adjacency, the
per-edge per-round bandwidth in bits, and cached graph metrics (diameter,
eccentricities) used both by algorithms that are allowed to know them and
by tests/benchmarks that compare measured behaviour against theory.
"""

from __future__ import annotations

import hashlib
import math
from functools import cached_property
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from .encoding import bits_for_domain
from .errors import CongestError

#: Default bandwidth allowance, as a multiple of ceil(log2 n).  CONGEST
#: messages are O(log n) bits; proofs in the paper pack a constant number of
#: identifiers/distances per message, so we allow 4 log-n-sized fields plus
#: a small tag budget by default.
DEFAULT_LOG_FACTOR = 4
DEFAULT_TAG_BITS = 16


class Network:
    """An n-node CONGEST network over an undirected connected graph.

    Args:
        graph: a connected undirected networkx graph whose nodes are the
            integers ``0..n-1`` (use :func:`repro.congest.topologies`
            generators, or :meth:`Network.from_edges`).
        bandwidth: per-edge per-round message size limit in bits.  Defaults
            to ``DEFAULT_LOG_FACTOR * ceil(log2 n) + DEFAULT_TAG_BITS``.
    """

    def __init__(self, graph: nx.Graph, bandwidth: int | None = None):
        if graph.number_of_nodes() == 0:
            raise CongestError("network must have at least one node")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes()) != expected:
            raise CongestError(
                "network nodes must be the integers 0..n-1; "
                "use Network.from_edges or repro.congest.topologies"
            )
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise CongestError("CONGEST networks must be connected")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        if bandwidth is None:
            bandwidth = (
                DEFAULT_LOG_FACTOR * bits_for_domain(max(self.n, 2))
                + DEFAULT_TAG_BITS
            )
        if bandwidth < 1:
            raise CongestError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth
        self._adj: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(graph.neighbors(v))) for v in range(self.n)
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[int, int]], bandwidth: int | None = None
    ) -> "Network":
        """Build a network from an edge list over integer nodes.

        Node labels are compacted to ``0..n-1`` preserving order.
        """
        g = nx.Graph()
        g.add_edges_from(edges)
        mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
        return Network(nx.relabel_nodes(g, mapping), bandwidth=bandwidth)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def nodes(self) -> range:
        return range(self.n)

    def has_edge(self, u: int, v: int) -> bool:
        return self.graph.has_edge(u, v)

    # ------------------------------------------------------------------
    # cached graph metrics (ground truth for tests and cost models)
    # ------------------------------------------------------------------

    @cached_property
    def eccentricities(self) -> Dict[int, int]:
        """True eccentricity of every node (ground truth, not CONGEST)."""
        if self.n == 1:
            return {0: 0}
        return nx.eccentricity(self.graph)

    @cached_property
    def diameter(self) -> int:
        return max(self.eccentricities.values()) if self.n > 1 else 0

    @cached_property
    def radius(self) -> int:
        return min(self.eccentricities.values()) if self.n > 1 else 0

    @cached_property
    def average_eccentricity(self) -> float:
        return sum(self.eccentricities.values()) / self.n

    def distances_from(self, source: int) -> Dict[int, int]:
        """Ground-truth BFS distances from ``source``."""
        return dict(nx.single_source_shortest_path_length(self.graph, source))

    def topology_fingerprint(self) -> str:
        """Content hash of the structure: node count, bandwidth, edge set.

        Deliberately *not* cached: the whole point is to detect in-place
        graph mutation, so every call re-reads the live edge set.  Two
        networks with the same structure hash identically regardless of
        object identity; one network mutated in place stops matching its
        own earlier fingerprint.  Used by
        :func:`repro.core.framework.prepare_network` as a staleness
        tripwire and by the :mod:`repro.sched` result memo as part of its
        content address.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(f"n={self.n};bw={self.bandwidth};".encode())
        for u, v in sorted(
            (u, v) if u <= v else (v, u) for u, v in self.graph.edges()
        ):
            h.update(f"{u},{v};".encode())
        return h.hexdigest()

    @cached_property
    def log_n_bits(self) -> int:
        """``ceil(log2 n)`` — the unit in which the paper counts bandwidth."""
        return bits_for_domain(max(self.n, 2))

    def words(self, bits: int) -> int:
        """Number of CONGEST rounds needed to push ``bits`` over one edge.

        This is the ``ceil(q / log n)`` factor appearing throughout the
        paper, evaluated against this network's actual bandwidth.
        """
        return max(1, math.ceil(bits / self.bandwidth))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(n={self.n}, m={self.m}, bandwidth={self.bandwidth} bits)"
        )
