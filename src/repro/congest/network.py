"""Network topology wrapper for the CONGEST model.

A :class:`Network` pins down everything the model needs about the
communication graph: the node set (integers ``0..n-1``), adjacency, the
per-edge per-round bandwidth in bits, and cached graph metrics (diameter,
eccentricities) used both by algorithms that are allowed to know them and
by tests/benchmarks that compare measured behaviour against theory.
"""

from __future__ import annotations

import hashlib
import math
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .encoding import bits_for_domain
from .errors import CongestError
from .models import (
    DEFAULT_LOG_FACTOR,
    DEFAULT_TAG_BITS,
    CommModel,
    CongestModel,
    resolve_model,
)

__all__ = [
    "Network",
    "CompleteNetwork",
    "DEFAULT_LOG_FACTOR",
    "DEFAULT_TAG_BITS",
]


class Network:
    """An n-node network over an undirected connected graph.

    The *physical* topology is always the given graph; the communication
    rules — who may message whom, how many bits fit per link per round —
    come from the attached :class:`~repro.congest.models.CommModel`.
    The default is the classical CONGEST model, byte-for-byte the
    behavior this class had before models existed.

    Args:
        graph: a connected undirected networkx graph whose nodes are the
            integers ``0..n-1`` (use :func:`repro.congest.topologies`
            generators, or :meth:`Network.from_edges`).
        bandwidth: legacy shim — per-edge per-round message size limit in
            bits under the default CONGEST model.  ``Network(g, bandwidth=b)``
            is exactly ``Network(g, comm_model=CongestModel(bandwidth=b))``;
            new code should pass ``comm_model=``.  Mutually exclusive with
            ``comm_model``.
        comm_model: a :class:`~repro.congest.models.CommModel` instance or
            registered model name (``"congest"``, ``"congest-clique"``,
            ``"local"``).  Defaults to ``CongestModel()``:
            ``DEFAULT_LOG_FACTOR * ceil(log2 n) + DEFAULT_TAG_BITS`` bits
            per physical edge per round.
    """

    def __init__(
        self,
        graph: nx.Graph,
        bandwidth: int | None = None,
        comm_model: "CommModel | str | None" = None,
    ):
        if graph.number_of_nodes() == 0:
            raise CongestError("network must have at least one node")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes()) != expected:
            raise CongestError(
                "network nodes must be the integers 0..n-1; "
                "use Network.from_edges or repro.congest.topologies"
            )
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise CongestError("CONGEST networks must be connected")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        if bandwidth is not None:
            if comm_model is not None:
                raise CongestError(
                    "pass either bandwidth= (legacy CONGEST shorthand) or "
                    "comm_model=, not both; use "
                    "CongestModel(bandwidth=...) to set both at once"
                )
            # Legacy shim: Network(g, bandwidth=b) predates the model
            # layer and means "CONGEST with an explicit per-edge cap".
            comm_model = CongestModel(bandwidth=bandwidth)
        self.model: CommModel = resolve_model(comm_model)
        self.bandwidth: Optional[int] = self.model.resolve_bandwidth(self.n)
        if self.bandwidth is not None and self.bandwidth < 1:
            raise CongestError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )
        self._adj: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(graph.neighbors(v))) for v in range(self.n)
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[int, int]],
        bandwidth: int | None = None,
        comm_model: "CommModel | str | None" = None,
    ) -> "Network":
        """Build a network from an edge list over integer nodes.

        Node labels are compacted to ``0..n-1`` preserving order.
        """
        g = nx.Graph()
        g.add_edges_from(edges)
        mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
        return Network(
            nx.relabel_nodes(g, mapping),
            bandwidth=bandwidth,
            comm_model=comm_model,
        )

    #: Structural hint consumed by the CSR builder: ``True`` only on
    #: :class:`CompleteNetwork`, whose adjacency admits a closed-form
    #: (loop-free) CSR construction.
    is_complete = False

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Physical neighbors of ``v``, ascending (the graph's adjacency)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Physical degree of ``v``."""
        return len(self._adj[v])

    def nodes(self) -> range:
        """The node ids, ``0..n-1``."""
        return range(self.n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the *physical* edge ``{u, v}`` exists."""
        return self.graph.has_edge(u, v)

    def peers(self, v: int) -> Tuple[int, ...]:
        """The nodes ``v`` may message under the communication model.

        For CONGEST and LOCAL this is :meth:`neighbors` (same tuple
        object — no copy); for CONGEST-CLIQUE it is every other node.
        The engine builds node :class:`~repro.congest.program.Context`
        objects from this, not from the raw adjacency.
        """
        return self.model.peers(self, v)

    def admit(self, src: int, dst: int, bits: int) -> None:
        """Validate one message against the model's admission rules.

        Raises :class:`~repro.congest.errors.NotANeighbor` or
        :class:`~repro.congest.errors.MessageTooLargeError`; returns
        None when the message is admissible.
        """
        self.model.admit(self, src, dst, bits)

    # ------------------------------------------------------------------
    # cached graph metrics (ground truth for tests and cost models)
    # ------------------------------------------------------------------

    @cached_property
    def eccentricities(self) -> Dict[int, int]:
        """True eccentricity of every node (ground truth, not CONGEST)."""
        if self.n == 1:
            return {0: 0}
        return nx.eccentricity(self.graph)

    @cached_property
    def diameter(self) -> int:
        return max(self.eccentricities.values()) if self.n > 1 else 0

    @cached_property
    def radius(self) -> int:
        return min(self.eccentricities.values()) if self.n > 1 else 0

    @cached_property
    def average_eccentricity(self) -> float:
        return sum(self.eccentricities.values()) / self.n

    def distances_from(self, source: int) -> Dict[int, int]:
        """Ground-truth BFS distances from ``source``."""
        return dict(nx.single_source_shortest_path_length(self.graph, source))

    def topology_fingerprint(self) -> str:
        """Content hash of the structure: node count, bandwidth, edge set.

        Deliberately *not* cached: the whole point is to detect in-place
        graph mutation, so every call re-reads the live edge set.  Two
        networks with the same structure hash identically regardless of
        object identity; one network mutated in place stops matching its
        own earlier fingerprint.  Used by
        :func:`repro.core.framework.prepare_network` as a staleness
        tripwire and by the :mod:`repro.sched` result memo as part of its
        content address.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(f"n={self.n};bw={self.bandwidth};".encode())
        # Non-default communication models contribute a token so the
        # same physical graph under two models never shares prepared
        # state, CSR entries, or memo addresses.  The default CONGEST
        # model contributes nothing, keeping pre-model fingerprints
        # byte-identical (they key persisted memo/checkpoint state).
        if self.model.event_token:
            h.update(f"model={self.model.cache_key};".encode())
        for u, v in sorted(
            (u, v) if u <= v else (v, u) for u, v in self.graph.edges()
        ):
            h.update(f"{u},{v};".encode())
        return h.hexdigest()

    @cached_property
    def log_n_bits(self) -> int:
        """``ceil(log2 n)`` — the unit in which the paper counts bandwidth."""
        return bits_for_domain(max(self.n, 2))

    def words(self, bits: int) -> int:
        """Number of CONGEST rounds needed to push ``bits`` over one edge.

        This is the ``ceil(q / log n)`` factor appearing throughout the
        paper, evaluated against this network's actual bandwidth.  Under
        an unbounded model (LOCAL) every transfer fits in one round.
        """
        if self.bandwidth is None:
            return 1
        return max(1, math.ceil(bits / self.bandwidth))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        model = f", model={self.model.name}" if self.model.event_token else ""
        return (
            f"Network(n={self.n}, m={self.m}, "
            f"bandwidth={self.bandwidth} bits{model})"
        )


class CompleteNetwork(Network):
    """K_n without the O(n²) networkx object graph.

    ``topologies.complete`` used to build ``nx.complete_graph(n)`` and
    eagerly materialize every node's neighbor tuple — tens of millions
    of Python objects at n ≥ 2·10³, which made CONGEST-CLIQUE benches
    unusable.  A complete graph's structure is fully determined by
    ``n``, so this subclass answers every :class:`Network` query in
    closed form and materializes per-node tuples (and the networkx
    graph, for the few callers that want one) lazily.

    Behavioral contract: observationally identical to
    ``Network(nx.complete_graph(n), ...)`` — same neighbors, degrees,
    metrics, and a byte-identical :meth:`topology_fingerprint` — so
    fast-built and nx-built K_n share prepared/CSR/memo cache entries.
    The fingerprint *is* cached here (unlike the base class, which
    recomputes to catch in-place graph mutation): a CompleteNetwork has
    no caller-supplied graph to mutate, and its lazily-built one is a
    derived view, not the source of truth.
    """

    is_complete = True

    def __init__(
        self,
        n: int,
        bandwidth: int | None = None,
        comm_model: "CommModel | str | None" = None,
    ):
        if n < 1:
            raise CongestError("network must have at least one node")
        if bandwidth is not None:
            if comm_model is not None:
                raise CongestError(
                    "pass either bandwidth= (legacy CONGEST shorthand) or "
                    "comm_model=, not both; use "
                    "CongestModel(bandwidth=...) to set both at once"
                )
            comm_model = CongestModel(bandwidth=bandwidth)
        self.n = n
        self.m = n * (n - 1) // 2
        self.model = resolve_model(comm_model)
        self.bandwidth = self.model.resolve_bandwidth(n)
        if self.bandwidth is not None and self.bandwidth < 1:
            raise CongestError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )
        self._adj_lazy: Dict[int, Tuple[int, ...]] = {}
        self._fingerprint: Optional[str] = None

    @cached_property
    def graph(self) -> nx.Graph:
        """The networkx view, materialized only if someone asks for it."""
        return nx.complete_graph(self.n)

    @property
    def _adj(self) -> Dict[int, Tuple[int, ...]]:
        """Whole-adjacency view (forces every node's tuple; rarely used)."""
        for v in range(self.n):
            if v not in self._adj_lazy:
                self.neighbors(v)
        return self._adj_lazy

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Every other node, ascending; built once per node on demand."""
        nbrs = self._adj_lazy.get(v)
        if nbrs is None:
            if not 0 <= v < self.n:
                raise KeyError(v)
            nbrs = tuple(range(v)) + tuple(range(v + 1, self.n))
            self._adj_lazy[v] = nbrs
        return nbrs

    def degree(self, v: int) -> int:
        """n-1, in closed form."""
        if not 0 <= v < self.n:
            raise KeyError(v)
        return self.n - 1

    def has_edge(self, u: int, v: int) -> bool:
        """Every distinct in-range pair is an edge of K_n."""
        return u != v and 0 <= u < self.n and 0 <= v < self.n

    @cached_property
    def eccentricities(self) -> Dict[int, int]:
        """All 1 (all 0 for the single-node graph), in closed form."""
        if self.n == 1:
            return {0: 0}
        return {v: 1 for v in range(self.n)}

    def distances_from(self, source: int) -> Dict[int, int]:
        """Everything is one hop away, in closed form."""
        if not 0 <= source < self.n:
            raise CongestError(f"source {source} out of range [0, {self.n})")
        dist = {v: 1 for v in range(self.n)}
        dist[source] = 0
        return dist

    def topology_fingerprint(self) -> str:
        """Byte-identical to the nx-built K_n's fingerprint, cached.

        Caching is safe here (and only here): the structure is a pure
        function of ``n``, so there is no in-place mutation to detect.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(f"n={self.n};bw={self.bandwidth};".encode())
            if self.model.event_token:
                h.update(f"model={self.model.cache_key};".encode())
            for u in range(self.n):
                h.update(
                    "".join(f"{u},{v};" for v in range(u + 1, self.n)).encode()
                )
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        model = f", model={self.model.name}" if self.model.event_token else ""
        return (
            f"CompleteNetwork(n={self.n}, "
            f"bandwidth={self.bandwidth} bits{model})"
        )
