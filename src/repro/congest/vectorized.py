"""Column-major bulk execution of structured node programs.

``Engine(schedule="vectorized")`` dispatches whole rounds as numpy array
operations instead of one Python call per node: a
:class:`VectorizedProgram` holds the *entire network's* program state as
arrays indexed by node (and by directed edge, via the
:class:`~repro.congest.csr.CSRAdjacency`), and ``step_all`` advances every
node one synchronous round at once.

The per-node path stays the bit-identity oracle (the same hypothesis
pinning PR 2 used for gate kernels): a vectorized run must produce
identical rounds, per-node outputs, traffic statistics, and trace events
to the dense and active schedules.  Ports therefore replicate the node
programs' semantics exactly — including which round a node halts in and
the engine's canonical ``(program order, dst)`` message ordering — rather
than merely computing the same final answer.

Messages here live on directed edges: every supported program sends at
most one message per edge per round (the CONGEST discipline the per-node
engine enforces via ``DuplicateSend``), so a round's traffic is an
:class:`EdgeMessages` — a sorted array of directed-edge ids plus two
payload-field columns, mirroring the ``(Field, Field)`` payloads of the
per-node programs.

Only audited program families vectorize; :func:`build_vectorized` returns
``(None, reason)`` for anything else and the engine silently falls back
to the active-set loop, recording the reason.  Mixed program dicts, tree
transfers with unregistered combine callables, and fault-armed engines
(:class:`repro.faults.FaultyEngine` vetoes via ``_vectorized_ok``) all
take the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from .algorithms.bfs import ECHO, NACK, TOKEN, TOKEN_NACK, BFSEchoProgram
from .algorithms.aggregate import DowncastProgram, UpcastProgram
from .algorithms.multibfs import MultiSourceBFSProgram
from .csr import CSRAdjacency, csr_for
from .encoding import Field, payload_bits

#: Sentinel for "no distance known yet" in multi-source BFS state; larger
#: than any real distance (which is < 2n < 2**40 at any feasible n).
_INF = np.int64(1) << 40


@dataclass
class EdgeMessages:
    """One round of traffic: per-directed-edge payload columns.

    ``edges[i]`` is a directed edge id into the CSR (src ``csr.src[e]``,
    dst ``csr.indices[e]``), sorted ascending; ``a``/``b`` are the two
    payload fields of message ``i`` (every supported program family uses
    two-field payloads — tag/value, source/dist, or index/value).
    """

    edges: np.ndarray
    a: np.ndarray
    b: np.ndarray

    def __len__(self) -> int:
        return int(self.edges.shape[0])


def _empty_messages() -> EdgeMessages:
    z = np.empty(0, dtype=np.int64)
    return EdgeMessages(edges=z, a=z.copy(), b=z.copy())


def _pack(
    edges: np.ndarray, a: np.ndarray, b: np.ndarray
) -> EdgeMessages:
    """Canonicalize an outgoing batch: sort columns by edge id."""
    if edges.shape[0] == 0:
        return _empty_messages()
    order = np.argsort(edges, kind="stable")
    return EdgeMessages(
        edges=np.ascontiguousarray(edges[order], dtype=np.int64),
        a=np.ascontiguousarray(a[order], dtype=np.int64),
        b=np.ascontiguousarray(b[order], dtype=np.int64),
    )


def _node_out_edges(
    csr: CSRAdjacency, nodes: np.ndarray
) -> np.ndarray:
    """All directed out-edge ids of ``nodes``, grouped per node."""
    if nodes.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    counts = csr.indptr[nodes + 1] - csr.indptr[nodes]
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(csr.indptr[nodes], counts) + offsets


class VectorizedProgram:
    """Whole-network bulk executor for one audited program family.

    The engine drives it exactly like its per-node round loop:

    * :meth:`start` is round 0 (``on_start`` for every node): returns the
      initial in-flight traffic and the mask of nodes that halted at
      start.
    * :meth:`step_all` is one communication round for the whole network:
      the engine passes the program's state arrays, the traffic delivered
      this round, and the active (non-halted) node mask, and receives the
      next round's traffic plus the mask of *newly* halted nodes.
    * :meth:`outputs` assembles the per-node outputs after the run, as
      plain Python objects bit-identical to the per-node ``ctx.output``.

    ``state`` is a dict of named numpy arrays — the column-major mirror
    of the per-node instance attributes; tests introspect it and the
    engine passes it back into ``step_all`` (the arrays are mutated in
    place).
    """

    #: Constant payload size of this family's messages, from the same
    #: ``payload_bits`` the per-node path charges.
    bits_per_message: int = 0

    def __init__(self, csr: CSRAdjacency):
        self.csr = csr
        self.state: Dict[str, np.ndarray] = {}

    def start(self) -> Tuple[EdgeMessages, np.ndarray]:
        raise NotImplementedError

    def step_all(
        self,
        state: Dict[str, np.ndarray],
        inbox: EdgeMessages,
        active_mask: np.ndarray,
        round_no: int,
    ) -> Tuple[EdgeMessages, np.ndarray]:
        raise NotImplementedError

    def outputs(self, rounds: int) -> Dict[int, Any]:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    def _deliverable(
        self, inbox: EdgeMessages, active_mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split an inbox into (edges, a, b, src, dst), dropping messages
        to halted nodes — the per-node loop never hands those to a
        program (they are still counted in stats by the engine, which
        sees the unfiltered inbox)."""
        edges, a, b = inbox.edges, inbox.a, inbox.b
        dst = self.csr.indices[edges]
        keep = active_mask[dst]
        if not keep.all():
            edges, a, b, dst = edges[keep], a[keep], b[keep], dst[keep]
        return edges, a, b, self.csr.src[edges], dst


class VectorizedBFSEcho(VectorizedProgram):
    """Bulk port of :class:`BFSEchoProgram` (BFS + echo termination)."""

    def __init__(self, csr: CSRAdjacency, root: int, n_domain: int):
        super().__init__(csr)
        self.root = root
        n = csr.n
        self.bits_per_message = payload_bits(
            (Field(0, 4), Field(0, 2 * n_domain))
        )
        self.state = {
            "dist": np.full(n, -1, dtype=np.int64),
            "parent": np.full(n, -1, dtype=np.int64),
            "parent_edge": np.full(n, -1, dtype=np.int64),
            "pending": np.zeros(n, dtype=np.int64),
            "max_depth": np.zeros(n, dtype=np.int64),
            "echo_sent": np.zeros(n, dtype=bool),
            "halted": np.zeros(n, dtype=bool),
        }
        self._degree = np.diff(csr.indptr)

    def start(self) -> Tuple[EdgeMessages, np.ndarray]:
        s = self.state
        r = self.root
        s["dist"][r] = 0
        if self._degree[r] == 0:
            s["echo_sent"][r] = True
            s["halted"][r] = True
            return _empty_messages(), s["halted"].copy()
        s["pending"][r] = self._degree[r]
        edges = np.arange(
            self.csr.indptr[r], self.csr.indptr[r + 1], dtype=np.int64
        )
        out = _pack(
            edges,
            np.full(edges.shape, TOKEN, dtype=np.int64),
            np.zeros(edges.shape, dtype=np.int64),
        )
        return out, s["halted"].copy()

    def step_all(self, state, inbox, active_mask, round_no):
        csr = self.csr
        dist, parent = state["dist"], state["parent"]
        pending, max_depth = state["pending"], state["max_depth"]
        echo_sent, halted = state["echo_sent"], state["halted"]

        edges, tag, val, src, dst = self._deliverable(inbox, active_mask)

        # Message loop: pending discards and echo depth maxima.  The
        # per-node set discard is a safe counter decrement — each directed
        # tree-probe resolves exactly once (see DESIGN 6h).
        is_discard = (tag == TOKEN_NACK) | (tag == NACK) | (tag == ECHO)
        np.subtract.at(pending, dst[is_discard], 1)
        is_echo = tag == ECHO
        np.maximum.at(max_depth, dst[is_echo], val[is_echo])

        is_tok = (tag == TOKEN) | (tag == TOKEN_NACK)
        tok_edges, tok_src, tok_dst = edges[is_tok], src[is_tok], dst[is_tok]

        pre_in_tree = dist != -1  # before this round's adoptions

        out_edges_parts = []
        out_tag_parts = []
        out_val_parts = []

        if tok_edges.shape[0]:
            # Adoption: first-token nodes join the tree.
            got_tok = np.zeros(csr.n, dtype=bool)
            got_tok[tok_dst] = True
            adopting_mask = got_tok & ~pre_in_tree
            adopting = np.nonzero(adopting_mask)[0]
            if adopting.shape[0]:
                best_src = np.full(csr.n, csr.n, dtype=np.int64)
                np.minimum.at(best_src, tok_dst, tok_src)
                dist[adopting] = round_no
                parent[adopting] = best_src[adopting]
                pending[adopting] = self._degree[adopting] - 1
                # Record the tree edge (v -> parent) for the later echo.
                from_parent = adopting_mask[tok_dst] & (
                    tok_src == best_src[tok_dst]
                )
                parent_edge = state["parent_edge"]
                parent_edge[tok_dst[from_parent]] = csr.rev[
                    tok_edges[from_parent]
                ]
                # Re-flood to every neighbor but the parent; edges whose
                # reverse carried a token this round cross-NACK.
                tok_in = np.zeros(csr.num_directed_edges, dtype=bool)
                tok_in[csr.rev[tok_edges]] = True
                out_e = _node_out_edges(csr, adopting)
                out_e = out_e[csr.indices[out_e] != parent[csr.src[out_e]]]
                out_edges_parts.append(out_e)
                out_tag_parts.append(
                    np.where(tok_in[out_e], TOKEN_NACK, TOKEN)
                )
                out_val_parts.append(dist[csr.src[out_e]])
            # In-tree nodes answer non-parent token senders with a NACK.
            late = pre_in_tree[tok_dst] & (tok_src != parent[tok_dst])
            if late.any():
                nack_e = csr.rev[tok_edges[late]]
                out_edges_parts.append(nack_e)
                out_tag_parts.append(
                    np.full(nack_e.shape, NACK, dtype=np.int64)
                )
                out_val_parts.append(np.zeros(nack_e.shape, dtype=np.int64))

        # Finish: every in-tree node with all responses in echoes once.
        finishing = (dist != -1) & (pending == 0) & ~echo_sent & ~halted
        new_halts = np.zeros(csr.n, dtype=bool)
        if finishing.any():
            fin = np.nonzero(finishing)[0]
            echo_sent[fin] = True
            halted[fin] = True
            new_halts[fin] = True
            non_root = fin[fin != self.root]
            if non_root.shape[0]:
                depth = np.maximum(max_depth[non_root], dist[non_root])
                out_edges_parts.append(state["parent_edge"][non_root])
                out_tag_parts.append(
                    np.full(non_root.shape, ECHO, dtype=np.int64)
                )
                out_val_parts.append(depth)

        if out_edges_parts:
            out = _pack(
                np.concatenate(out_edges_parts),
                np.concatenate(out_tag_parts),
                np.concatenate(out_val_parts),
            )
        else:
            out = _empty_messages()
        return out, new_halts

    def outputs(self, rounds: int) -> Dict[int, Any]:
        s = self.state
        result: Dict[int, Any] = {}
        for v in range(self.csr.n):
            if not s["halted"][v]:
                result[v] = None
            elif v == self.root:
                depth = max(int(s["max_depth"][v]), int(s["dist"][v]))
                result[v] = ("ecc", depth)
            else:
                result[v] = ("dist", int(s["dist"][v]), int(s["parent"][v]))
        return result


class VectorizedMultiSourceBFS(VectorizedProgram):
    """Bulk port of :class:`MultiSourceBFSProgram` (prioritized flood).

    The per-node, per-neighbor lazy-deletion heaps collapse to a boolean
    ``pending[edge, source]`` matrix with the token distance *implicit*
    (``best[src, source] + 1``): a heap entry that is fresh is exactly a
    set matrix bit, stale entries are never sent on either path, and the
    per-edge selection is the same ``(dist, source rank)`` minimum.
    """

    def __init__(self, csr: CSRAdjacency, sources, n_domain: int):
        super().__init__(csr)
        self.sources = list(sources)
        self.rank = {s: i for i, s in enumerate(self.sources)}
        S = len(self.sources)
        self.bits_per_message = payload_bits(
            (Field(0, n_domain), Field(0, 2 * n_domain))
        )
        self.state = {
            "best": np.full((csr.n, S), _INF, dtype=np.int64),
            "pending": np.zeros((csr.num_directed_edges, S), dtype=bool),
            "halted": np.zeros(csr.n, dtype=bool),
        }
        self._rank_arr = np.arange(S, dtype=np.int64)
        self._source_arr = np.asarray(self.sources, dtype=np.int64)
        # Node id -> source column (or -1), for O(1) inbox decoding.
        self._col_of = np.full(csr.n, -1, dtype=np.int64)
        self._col_of[self._source_arr] = self._rank_arr

    def _enqueue(self, nodes: np.ndarray, source_cols: np.ndarray) -> None:
        """Queue a token for ``source_cols[i]`` on every out-edge of
        ``nodes[i]`` (the matrix image of ``_enqueue_all``)."""
        if nodes.shape[0] == 0:
            return
        counts = self.csr.indptr[nodes + 1] - self.csr.indptr[nodes]
        edges = _node_out_edges(self.csr, nodes)
        self.state["pending"][edges, np.repeat(source_cols, counts)] = True

    def _flush(self) -> EdgeMessages:
        """Per edge, send the queued token minimizing (dist, rank)."""
        pending = self.state["pending"]
        best = self.state["best"]
        rows = np.nonzero(pending.any(axis=1))[0]
        if rows.shape[0] == 0:
            return _empty_messages()
        S = pending.shape[1]
        # Implicit token distance: one more than the sender's best.
        d = best[self.csr.src[rows]] + 1  # (rows, S)
        key = d * S + self._rank_arr  # lexicographic (dist, rank)
        key = np.where(pending[rows], key, np.int64(1) << 60)
        sel = np.argmin(key, axis=1)
        pending[rows, sel] = False
        return _pack(
            rows,
            self._source_arr[sel],
            d[np.arange(rows.shape[0]), sel],
        )

    def start(self) -> Tuple[EdgeMessages, np.ndarray]:
        src_nodes = self._source_arr
        if src_nodes.shape[0]:
            cols = np.arange(src_nodes.shape[0], dtype=np.int64)
            self.state["best"][src_nodes, cols] = 0
            self._enqueue(src_nodes, cols)
        return self._flush(), self.state["halted"].copy()

    def step_all(self, state, inbox, active_mask, round_no):
        best = state["best"]
        edges, a, b, src, dst = self._deliverable(inbox, active_mask)
        if edges.shape[0]:
            cols = self._col_of[a]
            old = best[dst, cols].copy()
            np.minimum.at(best, (dst, cols), b)
            improved = best[dst, cols] < old
            if improved.any():
                # One enqueue per improved (node, source) pair, matching
                # the sequential loop (later same-round duplicates for a
                # pair only produce stale heap entries, which never send).
                pairs = np.unique(
                    np.stack([dst[improved], cols[improved]], axis=1), axis=0
                )
                self._enqueue(pairs[:, 0], pairs[:, 1])
        out = self._flush()
        return out, np.zeros(self.csr.n, dtype=bool)

    def outputs(self, rounds: int) -> Dict[int, Any]:
        # In every schedule, once any communication round ran, every node
        # has executed (dense) or been delivered to (active — the flood
        # reaches all nodes before quiescence), so its output is the
        # final best-distance snapshot; with zero rounds nothing ran.
        if rounds == 0:
            return {v: None for v in range(self.csr.n)}
        best = self.state["best"]
        result: Dict[int, Any] = {}
        for v in range(self.csr.n):
            known = np.nonzero(best[v] < _INF)[0]
            result[v] = {
                self.sources[i]: int(best[v, i]) for i in known
            }
        return result


class _TreeTransfer(VectorizedProgram):
    """Shared structure of the pipelined tree transfers (up/downcast)."""

    def __init__(
        self,
        csr: CSRAdjacency,
        parent: np.ndarray,
        length: int,
        domain: int,
    ):
        super().__init__(csr)
        self.length = length
        self.domain = domain
        self.bits_per_message = payload_bits(
            (Field(0, max(length, 1)), Field(0, domain))
        )
        self.parent = parent
        self.root = int(np.nonzero(parent == -1)[0][0])
        # Tree edges, both directions, as CSR edge ids: edge e is a
        # parent edge of its src iff its dst is that src's parent.
        non_root = np.nonzero(parent != -1)[0]
        eids = np.arange(csr.num_directed_edges, dtype=np.int64)
        up_mask = parent[csr.src] == csr.indices
        self.parent_edge = np.full(csr.n, -1, dtype=np.int64)
        self.parent_edge[csr.src[up_mask]] = eids[up_mask]
        self.child_count = np.zeros(csr.n, dtype=np.int64)
        np.add.at(self.child_count, parent[non_root], 1)
        # Downward tree edges grouped by parent, ascending dst per parent
        # (matching ``BFSResult.children()`` order, which is ascending
        # because the parent map iterates nodes in order).
        down = self.csr.rev[self.parent_edge[non_root]]
        self._down_edges = np.sort(down)
        dn_src = csr.src[self._down_edges]
        self._down_ptr = np.searchsorted(
            dn_src, np.arange(csr.n + 1, dtype=np.int64)
        )

    def _children_edges(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(edge ids, repeat counts) of all downward edges of ``nodes``."""
        counts = self._down_ptr[nodes + 1] - self._down_ptr[nodes]
        total = int(counts.sum())
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        edges = self._down_edges[
            np.repeat(self._down_ptr[nodes], counts) + offsets
        ]
        return edges, counts


class VectorizedUpcast(_TreeTransfer):
    """Bulk port of :class:`UpcastProgram` (pipelined convergecast)."""

    def __init__(self, csr, parent, length, domain, values, ufunc):
        super().__init__(csr, parent, length, domain)
        self.ufunc = ufunc
        self.state = {
            "acc": values.astype(np.int64, copy=True),
            "received_count": np.zeros((csr.n, max(length, 1)), dtype=np.int64),
            "next_to_send": np.zeros(csr.n, dtype=np.int64),
            "halted": np.zeros(csr.n, dtype=bool),
        }

    def _push_all(self) -> Tuple[EdgeMessages, np.ndarray]:
        """One ``_push`` per non-halted node (dense semantics: a push
        that is not ready is a no-op)."""
        s = self.state
        nxt, halted = s["next_to_send"], s["halted"]
        idx = np.minimum(nxt, max(self.length - 1, 0))
        ready = (
            ~halted
            & (nxt < self.length)
            & (
                s["received_count"][np.arange(self.csr.n), idx]
                == self.child_count
            )
        )
        senders = np.nonzero(ready & (self.parent != -1))[0]
        out = _empty_messages()
        if senders.shape[0]:
            out = _pack(
                self.parent_edge[senders],
                nxt[senders],
                s["acc"][senders, nxt[senders]],
            )
        nxt[ready] += 1
        done = ready & (nxt >= self.length)
        halted[done] = True
        return out, done

    def start(self) -> Tuple[EdgeMessages, np.ndarray]:
        if self.length == 0:
            self.state["halted"][:] = True
            return _empty_messages(), self.state["halted"].copy()
        return self._push_all()

    def step_all(self, state, inbox, active_mask, round_no):
        edges, a, b, src, dst = self._deliverable(inbox, active_mask)
        if edges.shape[0]:
            # Coordinatewise combine; ufunc.at is unordered, which is
            # exact for the registered commutative/associative combines.
            self.ufunc.at(state["acc"], (dst, a), b)
            np.add.at(state["received_count"], (dst, a), 1)
        return self._push_all()

    def outputs(self, rounds: int) -> Dict[int, Any]:
        s = self.state
        result: Dict[int, Any] = {v: None for v in range(self.csr.n)}
        if s["halted"][self.root]:
            result[self.root] = tuple(
                int(x) for x in s["acc"][self.root, : self.length]
            )
        return result


class VectorizedDowncast(_TreeTransfer):
    """Bulk port of :class:`DowncastProgram` (pipelined broadcast)."""

    def __init__(self, csr, parent, length, domain, root_values):
        super().__init__(csr, parent, length, domain)
        received = np.full((csr.n, max(length, 1)), -1, dtype=np.int64)
        if length:
            received[self.root] = root_values
        self.state = {
            "received": received,
            "next_to_send": np.zeros(csr.n, dtype=np.int64),
            "halted": np.zeros(csr.n, dtype=bool),
        }

    def _push_all(self) -> Tuple[EdgeMessages, np.ndarray]:
        s = self.state
        nxt, halted = s["next_to_send"], s["halted"]
        idx = np.minimum(nxt, max(self.length - 1, 0))
        ready = (
            ~halted
            & (nxt < self.length)
            & (s["received"][np.arange(self.csr.n), idx] != -1)
        )
        senders = np.nonzero(ready)[0]
        out = _empty_messages()
        if senders.shape[0]:
            edges, counts = self._children_edges(senders)
            if edges.shape[0]:
                out = _pack(
                    edges,
                    np.repeat(nxt[senders], counts),
                    np.repeat(
                        s["received"][senders, nxt[senders]], counts
                    ),
                )
        nxt[ready] += 1
        done = ready & (nxt >= self.length)
        halted[done] = True
        return out, done

    def start(self) -> Tuple[EdgeMessages, np.ndarray]:
        if self.length == 0:
            self.state["halted"][:] = True
            return _empty_messages(), self.state["halted"].copy()
        return self._push_all()

    def step_all(self, state, inbox, active_mask, round_no):
        edges, a, b, src, dst = self._deliverable(inbox, active_mask)
        if edges.shape[0]:
            state["received"][dst, a] = b
        return self._push_all()

    def outputs(self, rounds: int) -> Dict[int, Any]:
        s = self.state
        result: Dict[int, Any] = {}
        for v in range(self.csr.n):
            if s["halted"][v]:
                if self.length:
                    result[v] = tuple(int(x) for x in s["received"][v])
                else:
                    result[v] = ()
            else:
                result[v] = None
        return result


# ----------------------------------------------------------------------
# combine registry (for the tree transfers)
# ----------------------------------------------------------------------

#: Per-callable (identity-keyed) map to the equivalent numpy ufunc; only
#: commutative/associative combines belong here — ``ufunc.at`` applies
#: same-target updates in unspecified order.
_COMBINE_UFUNCS: Dict[Any, np.ufunc] = {max: np.maximum, min: np.minimum}


def register_vectorized_combine(fn: Callable[[int, int], int], ufunc: np.ufunc) -> None:
    """Declare ``ufunc`` as the bulk equivalent of the scalar ``fn``.

    Only commutative and associative combines are sound to register.
    Unregistered combines do not error — tree transfers using them just
    fall back to the per-node path.
    """
    _COMBINE_UFUNCS[fn] = ufunc


def _register_semigroup_combines() -> None:
    # Lazy: repro.core imports repro.congest, so this module (loaded
    # lazily by Engine.steps) must not import core at module import time
    # in arbitrary orders.  All six library semigroups are commutative
    # and associative.
    try:
        from ..core import semigroup as sg
    except ImportError:  # pragma: no cover - core always present in-tree
        return
    pairs = [
        (getattr(sg, "combine_sum", None), np.add),
        (getattr(sg, "combine_xor", None), np.bitwise_xor),
        (getattr(sg, "combine_max", None), np.maximum),
        (getattr(sg, "combine_min", None), np.minimum),
        (getattr(sg, "combine_and", None), np.bitwise_and),
        (getattr(sg, "combine_or", None), np.bitwise_or),
    ]
    for fn, uf in pairs:
        if fn is not None:
            _COMBINE_UFUNCS.setdefault(fn, uf)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------


def _tree_arrays_from_programs(programs) -> Optional[np.ndarray]:
    """Extract a consistent parent array from tree-transfer programs."""
    n = len(programs)
    parent = np.full(n, -1, dtype=np.int64)
    roots = 0
    for v, p in programs.items():
        if p.parent is None:
            roots += 1
        else:
            parent[v] = p.parent
    if roots != 1:
        return None
    return parent


def build_vectorized(engine) -> Tuple[Optional[VectorizedProgram], Optional[str]]:
    """Build the bulk executor for an engine's program dict, if audited.

    Returns ``(program, None)`` on success or ``(None, reason)`` when the
    programs are not a supported homogeneous family — the engine then
    falls back to the active-set schedule.
    """
    _register_semigroup_combines()
    programs = engine.programs
    network = engine.network
    first = programs[next(iter(programs))]
    kinds = {type(p) for p in programs.values()}
    if len(kinds) != 1:
        return None, "mixed-program-types"
    kind = kinds.pop()
    csr = csr_for(network)

    if kind is BFSEchoProgram:
        roots = {p.root for p in programs.values()}
        if len(roots) != 1:
            return None, "bfs-roots-disagree"
        return VectorizedBFSEcho(csr, roots.pop(), network.n), None

    if kind is MultiSourceBFSProgram:
        sources = first.sources
        for p in programs.values():
            if p.sources != sources:
                return None, "multibfs-sources-disagree"
        return VectorizedMultiSourceBFS(csr, sources, network.n), None

    if kind is UpcastProgram:
        parent = _tree_arrays_from_programs(programs)
        if parent is None:
            return None, "upcast-tree-malformed"
        combines = {p.combine for p in programs.values()}
        domains = {p.domain for p in programs.values()}
        lengths = {p.length for p in programs.values()}
        if len(combines) != 1 or len(domains) != 1 or len(lengths) != 1:
            return None, "upcast-params-disagree"
        ufunc = _COMBINE_UFUNCS.get(combines.pop())
        if ufunc is None:
            return None, "upcast-combine-unregistered"
        length = lengths.pop()
        values = np.zeros((network.n, max(length, 1)), dtype=np.int64)
        for v, p in programs.items():
            if length:
                values[v] = p.acc
        return (
            VectorizedUpcast(csr, parent, length, domains.pop(), values, ufunc),
            None,
        )

    if kind is DowncastProgram:
        parent = _tree_arrays_from_programs(programs)
        if parent is None:
            return None, "downcast-tree-malformed"
        domains = {p.domain for p in programs.values()}
        lengths = {p.length for p in programs.values()}
        if len(domains) != 1 or len(lengths) != 1:
            return None, "downcast-params-disagree"
        length = lengths.pop()
        root = int(np.nonzero(parent == -1)[0][0])
        root_vals = programs[root].received
        if length and any(x is None for x in root_vals):
            return None, "downcast-root-values-missing"
        values = (
            np.asarray(root_vals, dtype=np.int64)
            if length
            else np.empty(0, dtype=np.int64)
        )
        return (
            VectorizedDowncast(csr, parent, length, domains.pop(), values),
            None,
        )

    return None, f"unsupported-program-{kind.__name__}"
