"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench module wraps one experiment from :mod:`repro.experiments`
(one per paper result — see DESIGN.md §5), times it under
pytest-benchmark, prints its result table, and asserts the reproduction
criterion (fitted exponents, separations, soundness).
"""

import pytest


def run_and_report(benchmark, module, **kwargs):
    """Benchmark an experiment module once and emit its table."""
    result = benchmark.pedantic(
        lambda: module.run(quick=True, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.table.render())
    return result
