"""E8 benchmark: distributed element distinctness (Lemmas 12-15)."""

from conftest import run_and_report

from repro.experiments import e08_element_distinctness


def test_e08_distributed_ed(benchmark):
    result = run_and_report(benchmark, e08_element_distinctness)
    # Reproduction criterion: rounds ~ k^{2/3} within a generous envelope.
    assert 0.45 <= result.k_exponent <= 0.9
