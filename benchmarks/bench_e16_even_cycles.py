"""E16 benchmark: exact even-cycle detection (post-Lemma-25 remark)."""

from conftest import run_and_report

from repro.experiments import e16_even_cycles


def test_e16_even_cycles(benchmark):
    result = run_and_report(benchmark, e16_even_cycles)
    # Reproduction criteria: one-sided error holds and the quantum bound
    # sits below the classical Ω̃(√n) floor for every supported k.
    assert result.all_sound
    assert result.quantum_below_classical
