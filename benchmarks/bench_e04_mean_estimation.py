"""E4 benchmark: parallel mean estimation (Lemma 6)."""

from conftest import run_and_report

from repro.experiments import e04_mean_estimation


def test_e04_mean_estimation(benchmark):
    result = run_and_report(benchmark, e04_mean_estimation)
    # Reproduction criterion: b ~ 1/ε up to polylog.
    assert -1.8 <= result.eps_exponent <= -0.7
