"""E2 benchmark: parallel minimum finding (Lemma 3)."""

from conftest import run_and_report

from repro.experiments import e02_parallel_minimum


def test_e02_parallel_minimum(benchmark):
    result = run_and_report(benchmark, e02_parallel_minimum)
    # Reproduction criterion: b ~ k^{1/2} within a generous envelope.
    assert 0.3 <= result.k_exponent <= 0.75
