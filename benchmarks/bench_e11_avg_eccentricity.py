"""E11 benchmark: average eccentricity estimation (Lemma 22)."""

from conftest import run_and_report

from repro.experiments import e11_avg_eccentricity


def test_e11_avg_eccentricity(benchmark):
    result = run_and_report(benchmark, e11_avg_eccentricity)
    # Reproduction criterion: rounds ~ 1/ε up to polylog.
    assert -1.8 <= result.eps_exponent <= -0.5
