"""E7 benchmark: meeting scheduling (Lemmas 10/11)."""

from conftest import run_and_report

from repro.experiments import e07_meeting


def test_e07_meeting(benchmark):
    result = run_and_report(benchmark, e07_meeting)
    # Reproduction criteria: √k growth and a crossover against classical.
    assert 0.3 <= result.k_exponent <= 0.7
    assert result.crossover_k is not None
