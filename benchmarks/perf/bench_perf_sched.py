"""Quick-mode smoke wrapper: coalescing-scheduler benchmark.

The workload asserts the bit-identical-to-serial coalescing invariant
(outputs, per-caller ledgers, round conservation) before timing anything
and raises unless amortized rounds-per-query strictly decreases with the
caller count at fixed p, so collecting it under pytest enforces both the
correctness contract and the PR-5 acceptance bar.  See DESIGN.md §6f.
"""

from repro.perf.sched_bench import sched_coalescing_workload


def test_sched_coalescing_quick():
    wl = sched_coalescing_workload(quick=True)
    sweep = [e for e in wl.sweep if "speedup" in e]
    memo = [e for e in wl.sweep if "memo_hit_rate" in e]
    assert len(sweep) >= 2 and len(memo) == 1

    amortized = [e["amortized_rounds_per_query"] for e in sweep]
    assert all(b < a for a, b in zip(amortized, amortized[1:])), amortized
    for entry in sweep:
        # Rounds-based speedup is hardware-independent: fewer physical
        # batches over the same query volume, never a timing artifact.
        assert entry["speedup"] > 1.0, entry
        assert entry["coalesced_rounds"] < entry["serial_rounds"]
        assert entry["serial_s"] > 0 and entry["coalesced_s"] > 0

    # A warm memo answers the replay without touching the network.
    assert memo[0]["coalesced_rounds"] == 0
    assert memo[0]["memo_hits"] == memo[0]["queries"] // 2 or memo[0]["memo_hits"] > 0
