"""Quick-mode smoke wrapper: amplitude-sketch serving benchmark.

The workload gates exact-vs-emulated decision bit-identity before any
timing, raises if the E23 space-accuracy ladder inverts, and raises
unless the daemon drain completes every client with at least one memo
invalidation, so collecting it under pytest enforces the PR-10
acceptance bar.  See DESIGN.md §6k.
"""

from repro.perf.sketches_bench import sketches_workload


def test_sketches_quick():
    wl = sketches_workload(quick=True)
    sections = {e["section"] for e in wl.sweep}
    assert sections == {"fidelity_gate", "mix_sensitivity", "serve", "e23"}
    gates = [e for e in wl.sweep if e["section"] == "fidelity_gate"]
    assert all(
        e["decisions_identical"] for e in gates if "decisions_identical" in e
    )
    mixes = [e for e in wl.sweep if e["section"] == "mix_sensitivity"]
    assert len(mixes) == 3
    for entry in mixes:
        assert entry["ops_per_sec"] > 0
        assert entry["memo_invalidations"] > 0
    (e23,) = [e for e in wl.sweep if e["section"] == "e23"]
    assert e23["alpha_non_increasing"] and e23["alpha_shrinks"]
    (served,) = [e for e in wl.sweep if e["section"] == "serve"]
    assert served["memo_invalidations"] > 0
