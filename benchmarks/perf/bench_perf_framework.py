"""Quick-mode smoke wrapper: framework setup-cache benchmark.

The workload asserts cold and warm runs return identical results and
charges before timing; collecting it under pytest is a correctness check.
"""

from repro.perf import framework_repeat_workload


def test_framework_repeat_quick():
    wl = framework_repeat_workload(quick=True)
    assert len(wl.sweep) >= 1
    for entry in wl.sweep:
        assert entry["total_rounds"] > 0
        assert entry["warm_s"] > 0 and entry["cold_s"] > 0
        # Warm runs skip setup entirely; they can never be slower by much.
        assert entry["speedup"] > 0.8
    assert wl.best_speedup is not None
