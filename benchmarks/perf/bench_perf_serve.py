"""Quick-mode smoke wrapper: serving-daemon benchmark.

The workload raises unless every accepted open-loop request completes
and the daemon's amortized rounds-per-query is no worse than the
synchronous scheduler's on the identical arrival sequence at equal
width, so collecting it under pytest enforces the PR-6 acceptance bar.
See DESIGN.md §6g.
"""

from repro.perf.serve_bench import serve_daemon_workload


def test_serve_daemon_quick():
    wl = serve_daemon_workload(quick=True)
    assert len(wl.sweep) >= 2
    modes = {e["mode"] for e in wl.sweep}
    assert modes == {"formula", "engine"}  # both execution paths covered
    for entry in wl.sweep:
        # Stepping batches on an event loop must not cost rounds.
        assert (
            entry["serve_rounds_per_query"]
            <= entry["sync_rounds_per_query"] * 1.02
        ), entry
        assert entry["qps"] > 0
        assert entry["p99_ms"] >= entry["p50_ms"] >= 0
        assert entry["batches"] > 0
