"""Quick-mode smoke wrapper: instrumentation-overhead benchmark.

The workload asserts bare/null-recorder/dense-sink engine runs are
identical and *raises* if the disabled path exceeds the <5% overhead
budget, so collecting it under pytest enforces the observability spine's
cost contract; see README.md here and DESIGN.md §6d.
"""

from repro.perf import OVERHEAD_BUDGET, obs_overhead_workload


def test_obs_overhead_quick():
    wl = obs_overhead_workload(quick=True)
    assert len(wl.sweep) >= 2
    for entry in wl.sweep:
        assert entry["rounds"] > 0
        assert entry["bare_s"] > 0 and entry["null_s"] > 0
        # The workload raises past the budget; re-check the recorded
        # numbers so a report edit can't silently drop the guard.
        assert entry["disabled_overhead"] < OVERHEAD_BUDGET
        # The dense sink is allowed to cost, but must have run.
        assert entry["dense_s"] > 0
