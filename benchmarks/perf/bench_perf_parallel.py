"""Quick-mode smoke wrapper: parallel sweep executor benchmark.

The workload asserts serial/parallel verdict identity before timing (it
raises on divergence), so collecting it under pytest enforces the
executor's bit-identical-results contract.  The sleep-based fan-out
entries prove real task overlap on any hardware; the CPU-bound >1.5x
speedup bar is only asserted where the host has the cores to clear it
(single-CPU runners physically cannot) — see DESIGN.md §6e.
"""

from repro.perf.parallel_bench import _cpus, parallel_verify_workload

#: The PR-4 acceptance bar for the CPU-bound sweep at jobs=4.
PARALLEL_SPEEDUP_TARGET = 1.5


def test_parallel_verify_quick():
    wl = parallel_verify_workload(quick=True)
    cpu_entries = [e for e in wl.sweep if "speedup" in e]
    fanout_entries = [e for e in wl.sweep if "fanout_speedup" in e]
    assert cpu_entries and fanout_entries
    for entry in cpu_entries:
        assert entry["serial_s"] > 0 and entry["parallel_s"] > 0
        assert entry["experiments"] > 0
    for entry in fanout_entries:
        # Overlapped sleeps must beat running them back to back; 1.5x
        # on two 0.2s naps leaves ~130ms of slack for dispatch overhead.
        assert entry["fanout_speedup"] > 1.5, entry


def test_parallel_speedup_target_when_cores_allow():
    """The >1.5x jobs=4 bar, gated on having >= 4 usable cores."""
    import pytest

    if _cpus() < 4:
        pytest.skip(
            f"host exposes {_cpus()} core(s); the CPU-bound speedup bar "
            f"needs >= 4 (the fan-out entries cover concurrency here)"
        )
    wl = parallel_verify_workload(quick=False)
    at4 = [e for e in wl.sweep if e.get("jobs") == 4 and "speedup" in e]
    assert at4, "no jobs=4 sweep entry"
    assert at4[0]["speedup"] > PARALLEL_SPEEDUP_TARGET, at4[0]
