"""Quick-mode smoke wrapper: statevector gate kernel benchmark.

The workload verifies every kernel against ``apply_generic`` to 1e-12
before timing; collecting it under pytest is a correctness check.
"""

from repro.perf import gate_throughput_workload


def test_gate_throughput_quick():
    wl = gate_throughput_workload(quick=True)
    kinds = {entry["workload"] for entry in wl.sweep}
    assert kinds == {"mix_1q", "cnot_fanout"}
    for entry in wl.sweep:
        assert entry["fast_gates_per_s"] > 0
        assert entry["generic_gates_per_s"] > 0
    assert wl.best_speedup is not None and wl.best_speedup > 1.0
