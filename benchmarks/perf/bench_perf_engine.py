"""Quick-mode smoke wrapper: engine scheduling benchmark.

The workload asserts dense/active runs are identical before timing, so
collecting it under pytest is a correctness check; see README.md here.
"""

from repro.perf import engine_flooding_workload
from repro.perf.harness import SPEEDUP_TARGET


def test_engine_flooding_quick():
    wl = engine_flooding_workload(quick=True)
    assert len(wl.sweep) >= 3
    for entry in wl.sweep:
        assert entry["rounds"] > 0
        assert entry["active_s"] > 0 and entry["dense_s"] > 0
    assert wl.best_speedup is not None
    # Quick instances are small; the high-diameter topology should still
    # clearly favor the active set (full mode clears SPEEDUP_TARGET).
    assert wl.best_speedup > 1.0, (wl.best_speedup, SPEEDUP_TARGET)
