"""Quick-mode smoke wrapper: report generation and comparison round-trip."""

import json
import subprocess
import sys

from repro.perf import build_report, run_all, write_report
from repro.perf.compare import compare_reports
from repro.perf.harness import SCHEMA


def test_run_all_builds_schema(tmp_path):
    report = run_all(quick=True, workloads=["framework"])
    assert report["schema"] == SCHEMA
    assert report["quick"] is True
    assert set(report["workloads"]) == {"framework_repeat"}
    summary = report["summary"]
    assert "framework_repeat" in summary["best_speedups"]
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert json.loads(out.read_text())["schema"] == SCHEMA


def test_compare_reports_lines_up_entries():
    wl = run_all(quick=True, workloads=["gates"])
    text = compare_reports(wl, wl)
    assert "gate_throughput" in text
    assert "->" in text  # per-entry deltas were matched and printed


def test_cli_bench_quick(tmp_path):
    out = tmp_path / "BENCH.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "--quick",
         "--workload", "framework", "--out", str(out)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert out.exists()
    assert "benchmark report" in proc.stdout


def test_empty_report_is_valid():
    report = build_report([], quick=True)
    assert report["workloads"] == {}
    assert report["summary"]["workloads_meeting_target"] == []
