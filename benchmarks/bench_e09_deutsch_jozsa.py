"""E9 benchmark: distributed Deutsch-Jozsa (Theorems 17/18)."""

from conftest import run_and_report

from repro.experiments import e09_deutsch_jozsa


def test_e09_deutsch_jozsa(benchmark):
    result = run_and_report(benchmark, e09_deutsch_jozsa)
    # Reproduction criteria: flat quantum growth, linear classical growth,
    # and zero errors on both sides (the separation is for EXACT protocols).
    assert result.quantum_k_exponent <= 0.25
    assert result.classical_k_exponent >= 0.75
    assert result.zero_error
