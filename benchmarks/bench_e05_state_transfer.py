"""E5 benchmark: Lemma 7 register distribution."""

from conftest import run_and_report

from repro.experiments import e05_state_transfer


def test_e05_state_transfer(benchmark):
    result = run_and_report(benchmark, e05_state_transfer)
    # Reproduction criterion: pipelined rounds within a constant of D + q/B.
    assert result.max_pipelined_ratio <= 2.0
