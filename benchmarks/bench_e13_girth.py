"""E13 benchmark: girth computation (Corollary 26)."""

from conftest import run_and_report

from repro.experiments import e13_girth


def test_e13_girth(benchmark):
    result = run_and_report(benchmark, e13_girth)
    # Reproduction criterion: one-sided error never violated.
    assert result.soundness_violations == 0
