"""E3 benchmark: parallel element distinctness (Lemma 5)."""

from conftest import run_and_report

from repro.experiments import e03_parallel_ed


def test_e03_parallel_ed(benchmark):
    result = run_and_report(benchmark, e03_parallel_ed)
    # Reproduction criterion: b ~ k^{2/3} within a generous envelope.
    assert 0.45 <= result.k_exponent <= 0.9
