"""E18 benchmark: success-probability boosting (the paper's remark)."""

from conftest import run_and_report

from repro.experiments import e18_boosting


def test_e18_boosting(benchmark):
    result = run_and_report(benchmark, e18_boosting)
    # Reproduction criteria: failure rates track (1/3)^r and the round
    # cost is linear in the repetition count.
    assert result.failure_rates_decrease
    assert result.rounds_linear_in_reps
