"""E14 benchmark: amplitude techniques (Lemmas 27-30)."""

from conftest import run_and_report

from repro.experiments import e14_amplitude


def test_e14_amplitude(benchmark):
    result = run_and_report(benchmark, e14_amplitude)
    # Reproduction criterion: amplification rounds ~ p^{-1/2}.
    assert -0.8 <= result.p_exponent <= -0.25
