"""E12 benchmark: bounded-length cycle detection (Lemmas 23-25)."""

from conftest import run_and_report

from repro.experiments import e12_cycles


def test_e12_cycles(benchmark):
    result = run_and_report(benchmark, e12_cycles)
    # Reproduction criterion: sublinear-in-n round growth with exponent
    # in the vicinity of the bound's 1/2 − 1/(4⌈k/2⌉+2) ≈ 0.43.
    assert 0.15 <= result.n_exponent <= 0.75
