"""E1 benchmark: parallel Grover (Lemma 2)."""

from conftest import run_and_report

from repro.experiments import e01_parallel_grover


def test_e01_parallel_grover(benchmark):
    result = run_and_report(benchmark, e01_parallel_grover)
    # Reproduction criterion: b ~ p^{-1/2} within a generous envelope.
    assert -0.8 <= result.p_exponent <= -0.25
