"""E10 benchmark: diameter and radius (Lemma 21)."""

from conftest import run_and_report

from repro.experiments import e10_diameter


def test_e10_diameter(benchmark):
    result = run_and_report(benchmark, e10_diameter)
    # Reproduction criterion: rounds ~ √n at fixed D.
    assert 0.3 <= result.n_exponent <= 0.7
