"""E19 benchmark: resilience round overhead under Bernoulli loss."""

from conftest import run_and_report

from repro.experiments import e19_resilience


def test_e19_resilience(benchmark):
    result = run_and_report(benchmark, e19_resilience)
    # Reproduction criteria: p=0 through the fault engine is exactly the
    # plain engine, every protected algorithm keeps its faultless output
    # at every loss rate, and protection is never free.
    assert result.zero_loss_identical
    assert result.all_correct
    assert all(x >= 1.0 for x in result.overheads.values())
