"""E6 benchmark: Theorem 8 / Corollary 9 framework costs."""

from conftest import run_and_report

from repro.experiments import e06_framework


def test_e06_framework(benchmark):
    result = run_and_report(benchmark, e06_framework)
    # Reproduction criterion: engine and formula agree within constants.
    assert result.max_engine_formula_ratio <= 5.0
