"""E15 benchmark: lower-bound reductions and certificates."""

from conftest import run_and_report

from repro.experiments import e15_lowerbounds


def test_e15_lowerbounds(benchmark):
    result = run_and_report(benchmark, e15_lowerbounds)
    # Reproduction criterion: every reduction answers every instance.
    assert result.all_reductions_sound
