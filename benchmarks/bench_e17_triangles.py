"""E17 benchmark: triangle finding (the Corollary 26 subroutine)."""

from conftest import run_and_report

from repro.experiments import e17_triangles


def test_e17_triangles(benchmark):
    result = run_and_report(benchmark, e17_triangles)
    # Reproduction criteria: the classical protocol is exact and the
    # quantum emulation has one-sided error.
    assert result.local_exact
    assert result.no_false_positives
